package conformance

import "testing"

func TestCheckCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		ops  []DurOp
		want []string // divergence rules, in order
	}{
		{
			name: "clean soak",
			ops: []DurOp{
				{Kind: "sent", Key: 1, Value: 1}, {Kind: "ack", Key: 1, Value: 1},
				{Kind: "sent", Key: 1, Value: 2}, // in flight at the crash
				{Kind: "crash"},
				{Kind: "read", Key: 1, Value: 1},
			},
		},
		{
			name: "unacked write surviving the crash is legal",
			ops: []DurOp{
				{Kind: "sent", Key: 1, Value: 1}, {Kind: "ack", Key: 1, Value: 1},
				{Kind: "sent", Key: 1, Value: 2},
				{Kind: "crash"},
				{Kind: "read", Key: 1, Value: 2},
			},
		},
		{
			name: "unwritten key reads zero",
			ops:  []DurOp{{Kind: "crash"}, {Kind: "read", Key: 7, Value: 0}},
		},
		{
			name: "lost acknowledged write",
			ops: []DurOp{
				{Kind: "sent", Key: 1, Value: 1}, {Kind: "ack", Key: 1, Value: 1},
				{Kind: "sent", Key: 1, Value: 2}, {Kind: "ack", Key: 1, Value: 2},
				{Kind: "crash"},
				{Kind: "read", Key: 1, Value: 1},
			},
			want: []string{"lost-ack"},
		},
		{
			name: "phantom value",
			ops: []DurOp{
				{Kind: "sent", Key: 1, Value: 1}, {Kind: "ack", Key: 1, Value: 1},
				{Kind: "crash"},
				{Kind: "read", Key: 1, Value: 9},
			},
			want: []string{"phantom"},
		},
		{
			name: "non-monotone writer is a harness bug",
			ops: []DurOp{
				{Kind: "sent", Key: 1, Value: 5},
				{Kind: "sent", Key: 1, Value: 3},
			},
			want: []string{"discipline"},
		},
		{
			name: "ack of a value never sent",
			ops:  []DurOp{{Kind: "ack", Key: 1, Value: 4}},
			want: []string{"discipline"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			divs := CheckCrashRecovery(tc.ops)
			if len(divs) != len(tc.want) {
				t.Fatalf("divergences = %v, want rules %v", divs, tc.want)
			}
			for i, d := range divs {
				if d.Rule != tc.want[i] {
					t.Errorf("divergence %d rule = %q, want %q (%s)", i, d.Rule, tc.want[i], d.Detail)
				}
			}
		})
	}
}
