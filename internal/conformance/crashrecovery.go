package conformance

import "fmt"

// DurOp is one observed operation in a durability soak ledger. The soak
// discipline is a single writer per key issuing strictly increasing
// values: the writer records every write it issued ("sent"), every write
// the node acknowledged ("ack"), each process kill ("crash"), and the
// values read back after recovery ("read").
type DurOp struct {
	Kind  string // "sent", "ack", "crash", "read"
	Key   int
	Value int
}

// CheckCrashRecovery replays a durability ledger (in observed order)
// against the write-ahead log's promise: zero lost acknowledged writes
// across process death. Under the single-writer, monotone-values
// discipline it checks:
//
//	lost-ack:   a read never observes a value below the key's last
//	            acknowledged write — an ack synced to the ledger survives
//	            any number of kill -9s.
//	phantom:    a read never observes a value that was not issued for its
//	            key (0 is legal while the key is unwritten). A value above
//	            the acked frontier but within the issued set is NOT a
//	            divergence: an executed-but-unacknowledged write may
//	            survive or be re-executed by a retry — the documented
//	            at-most-once window (docs/DURABILITY.md).
//	discipline: the harness itself kept values strictly increasing per
//	            key — a violation means the ledger, not the runtime, is
//	            wrong, and the other verdicts are untrustworthy.
func CheckCrashRecovery(ops []DurOp) []Divergence {
	maxSent := make(map[int]int)
	maxAcked := make(map[int]int)
	issued := make(map[int]map[int]bool)
	crashes := 0
	var divs []Divergence
	for i, op := range ops {
		switch op.Kind {
		case "crash":
			crashes++
		case "sent":
			if op.Value <= maxSent[op.Key] {
				divs = append(divs, Divergence{
					Rule:  "discipline",
					Entry: fmt.Sprintf("key %d", op.Key),
					Index: i,
					Detail: fmt.Sprintf("key %d sent value %d after %d — writer not monotone",
						op.Key, op.Value, maxSent[op.Key]),
				})
			}
			maxSent[op.Key] = op.Value
			if issued[op.Key] == nil {
				issued[op.Key] = make(map[int]bool)
			}
			issued[op.Key][op.Value] = true
		case "ack":
			if !issued[op.Key][op.Value] {
				divs = append(divs, Divergence{
					Rule:  "discipline",
					Entry: fmt.Sprintf("key %d", op.Key),
					Index: i,
					Detail: fmt.Sprintf("key %d acked value %d that was never sent",
						op.Key, op.Value),
				})
			}
			if op.Value > maxAcked[op.Key] {
				maxAcked[op.Key] = op.Value
			}
		case "read":
			if op.Value < maxAcked[op.Key] {
				divs = append(divs, Divergence{
					Rule:  "lost-ack",
					Entry: fmt.Sprintf("key %d", op.Key),
					Index: i,
					Detail: fmt.Sprintf("key %d read %d below acknowledged %d after %d crash(es)",
						op.Key, op.Value, maxAcked[op.Key], crashes),
				})
			}
			if op.Value != 0 && !issued[op.Key][op.Value] {
				divs = append(divs, Divergence{
					Rule:  "phantom",
					Entry: fmt.Sprintf("key %d", op.Key),
					Index: i,
					Detail: fmt.Sprintf("key %d read %d, a value never written after %d crash(es)",
						op.Key, op.Value, crashes),
				})
			}
		default:
			divs = append(divs, Divergence{
				Rule:   "discipline",
				Index:  i,
				Detail: fmt.Sprintf("unknown op kind %q", op.Kind),
			})
		}
	}
	return divs
}
