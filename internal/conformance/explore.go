package conformance

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/workload"
)

// ExploreConfig shapes an exploration campaign: Programs random manager
// programs, each exercised under Schedules seeded schedules. Client/op
// dimensions are derived per program from the master seed. A zero Deadline
// means run to completion; otherwise exploration stops cleanly after it.
type ExploreConfig struct {
	Seed      uint64
	Programs  int
	Schedules int
	Deadline  time.Time

	// ConfirmTries bounds how many re-runs confirm and preserve a failure
	// during shrinking (default 3). Failures under a seeded schedule are
	// highly reproducible but not guaranteed — goroutine arrival order at
	// decision points is the one residual nondeterminism — so shrinking only
	// commits to a smaller config after re-observing the failure.
	ConfirmTries int
}

func (c ExploreConfig) normalized() ExploreConfig {
	if c.Programs < 1 {
		c.Programs = 1
	}
	if c.Schedules < 1 {
		c.Schedules = 1
	}
	if c.ConfirmTries < 1 {
		c.ConfirmTries = 3
	}
	return c
}

// Failure is one diverging (program, schedule) pair, shrunk to the smallest
// workload that still reproduces it.
type Failure struct {
	Config      RunConfig    // shrunk config
	Original    RunConfig    // config that first exposed the failure
	Divergences []Divergence // from the last confirming run of Config
}

// Reproducer renders the failure as a runnable Go regression test, ready to
// drop into internal/conformance (docs/TESTING.md describes the workflow).
func (f Failure) Reproducer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Reproducer for conformance divergence at %s.\n", f.Config)
	for _, d := range f.Divergences {
		fmt.Fprintf(&b, "//   %s\n", d)
	}
	fmt.Fprintf(&b, "func TestConformanceRepro_%x_%x(t *testing.T) {\n",
		f.Config.ProgramSeed, f.Config.ScheduleSeed)
	fmt.Fprintf(&b, "\tdivs, err := conformance.Replay(%#x, %#x, %d, %d)\n",
		f.Config.ProgramSeed, f.Config.ScheduleSeed, f.Config.Clients, f.Config.Ops)
	b.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	b.WriteString("\tfor _, d := range divs {\n\t\tt.Errorf(\"divergence: %s\", d)\n\t}\n")
	b.WriteString("}\n")
	return b.String()
}

// ExploreResult summarizes a campaign.
type ExploreResult struct {
	Runs     int    // program×schedule runs executed
	Calls    int    // client calls issued across all runs
	Points   uint64 // scheduling decision points served across all runs
	Stopped  bool   // true if the deadline cut the campaign short
	Failures []Failure
}

// maxFailures bounds how many distinct failures a campaign collects before
// stopping early; one is enough to act on, a handful aids triage.
const maxFailures = 5

// Explore runs the campaign: for each of Programs program seeds derived from
// the master seed, generate the program, derive a client workload from its
// seed (1–4 clients, 2–12 ops each), and run it under Schedules schedule
// seeds. Every failing pair is confirmed and shrunk before being reported.
// logf (may be nil) receives one line per program and per failure.
func Explore(cfg ExploreConfig, logf func(format string, args ...any)) ExploreResult {
	cfg = cfg.normalized()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var res ExploreResult
	master := workload.NewRNG(cfg.Seed)
	for pi := 0; pi < cfg.Programs; pi++ {
		programSeed := master.Uint64()
		dims := workload.NewRNG(programSeed ^ 0xc0ffee)
		clients := 1 + dims.Intn(4)
		ops := 2 + dims.Intn(11)
		for si := 0; si < cfg.Schedules; si++ {
			if !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline) {
				res.Stopped = true
				return res
			}
			rc := RunConfig{
				ProgramSeed:  programSeed,
				ScheduleSeed: cfg.Seed ^ (uint64(pi)<<32 | uint64(si)) ^ 0x5851f42d4c957f2d,
				Clients:      clients,
				Ops:          ops,
			}
			rep, err := Run(rc)
			res.Runs++
			res.Calls += rep.Calls
			res.Points += rep.Points
			if err != nil {
				logf("run %s: build error: %v", rc, err)
				res.Failures = append(res.Failures, Failure{
					Config: rc, Original: rc,
					Divergences: []Divergence{{Rule: "build-error", Index: -1, Detail: err.Error()}},
				})
			} else if !rep.OK() {
				logf("run %s: %d divergence(s); shrinking", rc, len(rep.Divergences))
				f := shrinkFailure(rc, rep.Divergences, cfg.ConfirmTries)
				logf("shrunk to %s (%d divergence(s))", f.Config, len(f.Divergences))
				res.Failures = append(res.Failures, f)
			}
			if len(res.Failures) >= maxFailures {
				return res
			}
		}
		if (pi+1)%25 == 0 || pi+1 == cfg.Programs {
			logf("explored %d/%d programs, %d runs, %d calls, %d failures",
				pi+1, cfg.Programs, res.Runs, res.Calls, len(res.Failures))
		}
	}
	return res
}

// confirm re-runs cfg up to tries times, returning the first failing run's
// divergences, or ok=false if every run conformed.
func confirm(cfg RunConfig, tries int) ([]Divergence, bool) {
	for i := 0; i < tries; i++ {
		rep, err := Run(cfg)
		if err != nil {
			return []Divergence{{Rule: "build-error", Index: -1, Detail: err.Error()}}, true
		}
		if !rep.OK() {
			return rep.Divergences, true
		}
	}
	return nil, false
}

// shrinkFailure greedily reduces the failing workload — halving then
// decrementing clients and ops — accepting a candidate only when the failure
// re-confirms under it. Seeds are never shrunk: they identify the program
// and schedule.
func shrinkFailure(orig RunConfig, divs []Divergence, tries int) Failure {
	cur, curDivs := orig.normalized(), divs
	for {
		improved := false
		for _, cand := range []RunConfig{
			{cur.ProgramSeed, cur.ScheduleSeed, cur.Clients / 2, cur.Ops},
			{cur.ProgramSeed, cur.ScheduleSeed, cur.Clients, cur.Ops / 2},
			{cur.ProgramSeed, cur.ScheduleSeed, cur.Clients - 1, cur.Ops},
			{cur.ProgramSeed, cur.ScheduleSeed, cur.Clients, cur.Ops - 1},
		} {
			if cand.Clients < 1 || cand.Ops < 1 || cand == cur {
				continue
			}
			if d, failed := confirm(cand, tries); failed {
				cur, curDivs = cand, d
				improved = true
				break
			}
		}
		if !improved {
			return Failure{Config: cur, Original: orig, Divergences: curDivs}
		}
	}
}
