package crossobj

import (
	"sync"
	"testing"
	"time"
)

func TestNestedCallCompletes(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := p.CallP(41)
		if err != nil {
			t.Errorf("CallP: %v", err)
			return
		}
		if got != 42 {
			t.Errorf("CallP = %d, want 42", got)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("X.P → Y.Q → X.R deadlocked; the manager did not accept R while P ran")
	}
	if p.RRuns() != 1 {
		t.Fatalf("R ran %d times, want 1", p.RRuns())
	}
}

func TestManyConcurrentNestedCalls(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const drivers = 16
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < drivers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := p.CallP(i)
				if err != nil {
					t.Errorf("CallP(%d): %v", i, err)
					return
				}
				if got != i+1 {
					t.Errorf("CallP(%d) = %d", i, got)
				}
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent nested calls deadlocked")
	}
	if p.RRuns() != drivers {
		t.Fatalf("R ran %d times, want %d", p.RRuns(), drivers)
	}
}

func TestRepeatedSequentialNestedCalls(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 50; i++ {
		got, err := p.CallP(i)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got != i+1 {
			t.Fatalf("CallP(%d) = %d", i, got)
		}
	}
}
