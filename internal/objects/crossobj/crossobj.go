// Package crossobj demonstrates the paper's nested-call claim (§2.3): "two
// objects X and Y can be programmed without deadlock such that an entry
// procedure P in X calls a procedure Q in Y which in turn calls another
// entry R in X. Deadlock can be avoided because X's manager can be
// programmed such that after starting the execution of P it can be ready to
// accept calls to R." Monitors (DP, Ada, SR) deadlock on this pattern —
// see internal/baseline.NestedMonitorPair.
package crossobj

import (
	"fmt"
	"sync/atomic"

	alps "repro"
)

// Pair is the X/Y object configuration.
type Pair struct {
	X, Y *alps.Object

	rRuns atomic.Uint64
}

// New wires up the two objects. depth is how many nested P→Q→R chains each
// call performs (1 reproduces the paper's scenario exactly).
func New() (*Pair, error) {
	p := &Pair{}

	// Y.Q calls back into X.R. Y needs no manager: Q is a pure relay.
	yq := func(inv *alps.Invocation) error {
		res, err := p.X.Call("R", inv.Param(0))
		if err != nil {
			return fmt.Errorf("Y.Q calling X.R: %w", err)
		}
		inv.Return(res[0])
		return nil
	}
	y, err := alps.New("Y",
		alps.WithEntry(alps.EntrySpec{Name: "Q", Params: 1, Results: 1, Array: 8, Body: yq}),
	)
	if err != nil {
		return nil, err
	}

	// X.P calls Y.Q; X.R is the reentrant entry.
	xp := func(inv *alps.Invocation) error {
		res, err := p.Y.Call("Q", inv.Param(0))
		if err != nil {
			return fmt.Errorf("X.P calling Y.Q: %w", err)
		}
		inv.Return(res[0])
		return nil
	}
	xr := func(inv *alps.Invocation) error {
		p.rRuns.Add(1)
		inv.Return(inv.Param(0).(int) + 1)
		return nil
	}
	// X's manager: after *starting* P (not executing it), it stays ready to
	// accept R — this is what start's asynchrony buys.
	xmgr := func(m *alps.Mgr) {
		_ = m.Loop(
			alps.OnAccept("P", func(a *alps.Accepted) { _ = m.Start(a) }),
			alps.OnAwait("P", func(aw *alps.Awaited) { _ = m.Finish(aw) }),
			alps.OnAccept("R", func(a *alps.Accepted) { _, _ = m.Execute(a) }),
		)
	}
	x, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8, Body: xp}),
		alps.WithEntry(alps.EntrySpec{Name: "R", Params: 1, Results: 1, Array: 8, Body: xr}),
		alps.WithManager(xmgr, alps.Intercept("P"), alps.Intercept("R")),
	)
	if err != nil {
		_ = y.Close()
		return nil, err
	}
	p.X = x
	p.Y = y
	return p, nil
}

// CallP runs the full X.P → Y.Q → X.R chain and returns R's result.
func (p *Pair) CallP(v int) (int, error) {
	res, err := p.X.Call("P", v)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// RRuns reports how many times the reentrant entry R executed.
func (p *Pair) RRuns() uint64 { return p.rRuns.Load() }

// Close shuts both objects down.
func (p *Pair) Close() error {
	errX := p.X.Close()
	errY := p.Y.Close()
	if errX != nil {
		return errX
	}
	return errY
}
