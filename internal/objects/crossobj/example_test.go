package crossobj_test

import (
	"fmt"
	"log"

	"repro/internal/objects/crossobj"
)

// Example runs the nested call chain X.P -> Y.Q -> X.R that deadlocks
// under monitor semantics but completes under a manager (§2.3).
func Example() {
	pair, err := crossobj.New()
	if err != nil {
		log.Fatal(err)
	}
	defer pair.Close()
	got, err := pair.CallP(41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(got)
	// Output: 42
}
