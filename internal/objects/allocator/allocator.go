// Package allocator implements a counting resource allocator, the paper's
// §1 motivation that "the manager can request the call and then delay it
// until it is mature for execution … if the scheduling of the call
// requires further processing based on the invocation parameters": a call
// Acquire(n) must wait until n units are free, so the acceptance condition
// depends on the parameter value itself.
//
// Two admission policies show the scheduling flexibility the paper claims:
// FirstFit accepts any pending request that currently fits (high
// utilization, may starve large requests); Ordered admits strictly in
// arrival order (no starvation, may idle units). The policy is one line of
// manager code.
package allocator

import (
	"fmt"
	"sync/atomic"

	alps "repro"
)

// Policy selects the admission order.
type Policy int

const (
	// FirstFit admits any pending request that fits right now.
	FirstFit Policy = iota + 1
	// Ordered admits requests strictly in arrival order: a large request
	// at the head blocks later small ones (no starvation).
	Ordered
)

// Config configures an allocator.
type Config struct {
	Units      int    // total resource units
	AcquireMax int    // hidden Acquire array size (default 16)
	Policy     Policy // admission policy (default FirstFit)
	ObjOpts    []alps.Option
}

// Allocator manages a pool of identical resource units.
type Allocator struct {
	obj   *alps.Object
	units int

	inUse      atomic.Int64 // monitoring
	peakInUse  atomic.Int64
	violations atomic.Int64 // over-allocation, always 0 if the manager is correct
}

// New creates an allocator with cfg.Units units.
func New(cfg Config) (*Allocator, error) {
	if cfg.Units < 1 {
		return nil, fmt.Errorf("allocator: %d units", cfg.Units)
	}
	if cfg.AcquireMax == 0 {
		cfg.AcquireMax = 16
	}
	if cfg.AcquireMax < 1 {
		return nil, fmt.Errorf("allocator: AcquireMax %d", cfg.AcquireMax)
	}
	if cfg.Policy == 0 {
		cfg.Policy = FirstFit
	}
	a := &Allocator{units: cfg.Units}

	acquire := func(inv *alps.Invocation) error {
		n := int64(inv.Param(0).(int))
		cur := a.inUse.Add(n)
		if cur > int64(a.units) {
			a.violations.Add(1)
		}
		for {
			peak := a.peakInUse.Load()
			if cur <= peak || a.peakInUse.CompareAndSwap(peak, cur) {
				break
			}
		}
		return nil
	}
	release := func(inv *alps.Invocation) error {
		a.inUse.Add(-int64(inv.Param(0).(int)))
		return nil
	}

	manager := func(m *alps.Mgr) {
		free := cfg.Units
		var guards []alps.Guard
		common := []alps.Guard{
			alps.OnAccept("Release", func(acc *alps.Accepted) {
				if _, err := m.Execute(acc); err == nil {
					free += acc.Params[0].(int)
				}
			}),
			alps.OnAwait("Acquire", func(aw *alps.Awaited) {
				_ = m.Finish(aw)
			}),
		}
		switch cfg.Policy {
		case Ordered:
			// Strict arrival order: requests are accepted (and parked) in
			// arrival order — run-time pri over call ids — then started
			// head-first whenever the head fits. A large request at the
			// head blocks later small ones, so nobody starves.
			var parked []*alps.Accepted
			guards = append(common,
				alps.OnAccept("Acquire", func(acc *alps.Accepted) {
					parked = append(parked, acc)
				}).PriAccept(func(acc *alps.Accepted) int { return int(acc.CallID()) }),
				alps.OnCond(func() bool {
					return len(parked) > 0 && parked[0].Params[0].(int) <= free
				}, func() {
					head := parked[0]
					parked = parked[1:]
					if err := m.Start(head); err == nil {
						free -= head.Params[0].(int)
					}
				}),
			)
		default: // FirstFit
			guards = append(common,
				alps.OnAccept("Acquire", func(acc *alps.Accepted) {
					n := acc.Params[0].(int)
					if err := m.Start(acc); err == nil {
						free -= n
					}
				}).When(func(acc *alps.Accepted) bool {
					// The acceptance condition reads the invocation parameter.
					return acc.Params[0].(int) <= free
				}),
			)
		}
		_ = m.Loop(guards...)
	}

	obj, err := alps.New("Allocator", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{Name: "Acquire", Params: 1, Array: cfg.AcquireMax, Body: acquire}),
		alps.WithEntry(alps.EntrySpec{Name: "Release", Params: 1, Array: 4, Body: release}),
		alps.WithManager(manager, alps.InterceptPR("Acquire", 1, 0), alps.InterceptPR("Release", 1, 0)),
	)...)
	if err != nil {
		return nil, err
	}
	a.obj = obj
	return a, nil
}

// Acquire blocks until n units are available and claims them.
func (a *Allocator) Acquire(n int) error {
	if n < 1 || n > a.units {
		return fmt.Errorf("allocator: acquire %d of %d units", n, a.units)
	}
	_, err := a.obj.Call("Acquire", n)
	return err
}

// Release returns n units to the pool.
func (a *Allocator) Release(n int) error {
	if n < 1 {
		return fmt.Errorf("allocator: release %d", n)
	}
	_, err := a.obj.Call("Release", n)
	return err
}

// Stats reports peak units in use and over-allocation violations.
func (a *Allocator) Stats() (peak int, violations int) {
	return int(a.peakInUse.Load()), int(a.violations.Load())
}

// Units reports the configured pool size.
func (a *Allocator) Units() int { return a.units }

// Object exposes the underlying ALPS object.
func (a *Allocator) Object() *alps.Object { return a.obj }

// Close shuts the allocator down.
func (a *Allocator) Close() error { return a.obj.Close() }
