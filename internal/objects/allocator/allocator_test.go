package allocator

import (
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Units: 0}); err == nil {
		t.Fatal("0 units succeeded")
	}
	if _, err := New(Config{Units: 4, AcquireMax: -1}); err == nil {
		t.Fatal("negative AcquireMax succeeded")
	}
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	a, err := New(Config{Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Acquire(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(0); err == nil {
		t.Fatal("Acquire(0) succeeded")
	}
	if err := a.Acquire(5); err == nil {
		t.Fatal("Acquire > Units succeeded")
	}
	if err := a.Release(0); err == nil {
		t.Fatal("Release(0) succeeded")
	}
	if a.Units() != 4 {
		t.Fatalf("Units = %d", a.Units())
	}
}

func TestAcquireBlocksUntilUnitsFree(t *testing.T) {
	a, err := New(Config{Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Acquire(3); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Acquire(2) }() // 2 > 1 free: must wait
	select {
	case <-done:
		t.Fatal("Acquire(2) with 1 free did not block")
	case <-time.After(50 * time.Millisecond):
	}
	if err := a.Release(3); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not resume after Release")
	}
}

// stress drives random acquire/release pairs and checks no over-allocation.
func stress(t *testing.T, policy Policy) *Allocator {
	t.Helper()
	const units = 6
	a, err := New(Config{Units: units, Policy: policy, AcquireMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 11)
			for i := 0; i < 40; i++ {
				n := rng.Intn(3) + 1
				if err := a.Acquire(n); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if err := a.Release(n); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	peak, violations := a.Stats()
	if violations != 0 {
		t.Fatalf("policy %d: %d over-allocations", policy, violations)
	}
	if peak > units {
		t.Fatalf("policy %d: peak %d > %d units", policy, peak, units)
	}
	if peak < units/2 {
		t.Errorf("policy %d: peak %d; pool badly under-used", policy, peak)
	}
	return a
}

func TestFirstFitNeverOverAllocates(t *testing.T) {
	a := stress(t, FirstFit)
	defer a.Close()
}

func TestOrderedNeverOverAllocates(t *testing.T) {
	a := stress(t, Ordered)
	defer a.Close()
}

// TestOrderedLargeRequestNotStarved: under FirstFit a continuous stream of
// small requests can starve a big one; under Ordered the big request at
// the queue head blocks later small ones and completes.
func TestOrderedLargeRequestNotStarved(t *testing.T) {
	a, err := New(Config{Units: 4, Policy: Ordered, AcquireMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Keep the pool busy with small requests.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := a.Acquire(1); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
				if err := a.Release(1); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)

	// The big request needs the whole pool.
	bigDone := make(chan error, 1)
	go func() { bigDone <- a.Acquire(4) }()
	select {
	case err := <-bigDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Acquire(4) starved under Ordered policy")
	}
	if err := a.Release(4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
