package allocator_test

import (
	"fmt"
	"log"

	"repro/internal/objects/allocator"
)

// Example acquires and releases resource units; the acceptance condition
// reads the requested amount from the invocation parameters (§1).
func Example() {
	a, err := allocator.New(allocator.Config{Units: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	if err := a.Acquire(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("holding 3 of", a.Units())
	if err := a.Release(3); err != nil {
		log.Fatal(err)
	}
	// Output: holding 3 of 4
}
