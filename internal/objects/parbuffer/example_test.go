package parbuffer_test

import (
	"fmt"
	"log"

	"repro/internal/objects/parbuffer"
)

// Example moves a message through the §2.8.2 parallel buffer: the manager
// brokers slot indices; the copies run outside it.
func Example() {
	b, err := parbuffer.New(parbuffer.Config{Slots: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	if err := b.Deposit("payload"); err != nil {
		log.Fatal(err)
	}
	msg, err := b.Remove()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)
	// Output: payload
}
