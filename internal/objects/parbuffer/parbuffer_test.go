package parbuffer

import (
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Slots: 0}); err == nil {
		t.Fatal("0 slots succeeded")
	}
	if _, err := New(Config{Slots: 4, ProducerMax: -1}); err == nil {
		t.Fatal("negative ProducerMax succeeded")
	}
}

func TestDepositRemoveRoundTrip(t *testing.T) {
	b, err := New(Config{Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Deposit("hello"); err != nil {
		t.Fatal(err)
	}
	v, err := b.Remove()
	if err != nil {
		t.Fatal(err)
	}
	if v != "hello" {
		t.Fatalf("Remove = %v", v)
	}
}

func TestConservationManyProducersConsumers(t *testing.T) {
	b, err := New(Config{Slots: 8, ProducerMax: 4, ConsumerMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const producers, perProducer = 4, 100
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Deposit([2]int{p, i}); err != nil {
					t.Errorf("Deposit: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[[2]int]bool, total)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				v, err := b.Remove()
				if err != nil {
					t.Errorf("Remove: %v", err)
					return
				}
				key := v.([2]int)
				mu.Lock()
				if seen[key] {
					t.Errorf("duplicate message %v", key)
				}
				seen[key] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != total {
		t.Fatalf("received %d distinct messages, want %d", len(seen), total)
	}
	deposits, removes, violations := b.Stats()
	if deposits != uint64(total) || removes != uint64(total) {
		t.Fatalf("deposits/removes = %d/%d, want %d", deposits, removes, total)
	}
	if violations != 0 {
		t.Fatalf("%d slot-sharing violations", violations)
	}
}

func TestBlocksWhenFullAndEmpty(t *testing.T) {
	b, err := New(Config{Slots: 2, ProducerMax: 4, ConsumerMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Remove on empty blocks.
	removed := make(chan struct{})
	go func() {
		if _, err := b.Remove(); err == nil {
			close(removed)
		}
	}()
	select {
	case <-removed:
		t.Fatal("Remove on empty buffer returned")
	case <-time.After(30 * time.Millisecond):
	}
	// Fill: 2 slots + the blocked remove consumes one deposit.
	for i := 0; i < 3; i++ {
		if err := b.Deposit(i); err != nil {
			t.Fatal(err)
		}
	}
	<-removed
	// Now 2 slots full. A third deposit must block.
	deposited := make(chan struct{})
	go func() {
		if err := b.Deposit(99); err == nil {
			close(deposited)
		}
	}()
	select {
	case <-deposited:
		t.Fatal("Deposit into full buffer returned")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := b.Remove(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-deposited:
	case <-time.After(2 * time.Second):
		t.Fatal("Deposit did not unblock")
	}
}

// TestCopiesOverlap verifies the point of the design: with slow copies,
// multiple deposits/removes are in flight at once (the manager only brokers
// indices), unlike the serial §2.4.1 buffer.
func TestCopiesOverlap(t *testing.T) {
	const copyCost = 20 * time.Millisecond
	b, err := New(Config{Slots: 8, ProducerMax: 4, ConsumerMax: 4, CopyCost: copyCost})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Deposit(i); err != nil {
				t.Errorf("Deposit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serial execution would take >= 4 × copyCost = 80ms. Allow generous
	// margin: anything under 3 × copyCost proves overlap.
	if elapsed >= 3*copyCost {
		t.Fatalf("4 deposits with %v copies took %v; copies did not overlap", copyCost, elapsed)
	}
	_, _, violations := b.Stats()
	if violations != 0 {
		t.Fatalf("%d slot-sharing violations", violations)
	}
}

func TestNoSlotSharingUnderStress(t *testing.T) {
	b, err := New(Config{Slots: 4, ProducerMax: 8, ConsumerMax: 8, CopyCost: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	const items = 200
	wg.Add(2)
	go func() {
		defer wg.Done()
		var pwg sync.WaitGroup
		for i := 0; i < items; i++ {
			pwg.Add(1)
			go func(i int) {
				defer pwg.Done()
				if err := b.Deposit(i); err != nil {
					t.Errorf("Deposit: %v", err)
				}
			}(i)
		}
		pwg.Wait()
	}()
	go func() {
		defer wg.Done()
		var cwg sync.WaitGroup
		for i := 0; i < items; i++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				if _, err := b.Remove(); err != nil {
					t.Errorf("Remove: %v", err)
				}
			}()
		}
		cwg.Wait()
	}()
	wg.Wait()
	deposits, removes, violations := b.Stats()
	if deposits != items || removes != items {
		t.Fatalf("deposits/removes = %d/%d", deposits, removes)
	}
	if violations != 0 {
		t.Fatalf("%d slot-sharing violations", violations)
	}
}
