// Package parbuffer implements the paper's parallel bounded buffer
// (§2.8.2): Deposit and Remove are hidden procedure arrays so several
// producers and consumers are serviced in parallel. The manager deals only
// in buffer-slot *indices*: it supplies a free slot index to each Deposit
// (and a full slot index to each Remove) as a hidden parameter, and gets
// the index back as a hidden result when the procedure terminates. The
// potentially long message copies into and out of Buf therefore run
// concurrently, outside the manager, with no further synchronization —
// each slot index is held by exactly one running procedure.
package parbuffer

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// Config configures a parallel bounded buffer.
type Config struct {
	Slots       int           // N message slots
	ProducerMax int           // Deposit hidden array size (default 4)
	ConsumerMax int           // Remove hidden array size (default 4)
	CopyCost    time.Duration // simulated per-message copy time (long messages)
	ObjOpts     []alps.Option
}

// Buffer is a parallel bounded buffer.
type Buffer struct {
	obj *alps.Object

	// Shared data part: the message slots. Slot exclusivity is guaranteed
	// by the manager's index bookkeeping, not by locks.
	buf []alps.Value

	deposits atomic.Uint64
	removes  atomic.Uint64
	// overlap detection: slot i must never be used by two procedures at once.
	slotBusy   []atomic.Int32
	violations atomic.Int64
}

// New creates a parallel bounded buffer.
func New(cfg Config) (*Buffer, error) {
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("parbuffer: %d slots", cfg.Slots)
	}
	if cfg.ProducerMax == 0 {
		cfg.ProducerMax = 4
	}
	if cfg.ConsumerMax == 0 {
		cfg.ConsumerMax = 4
	}
	if cfg.ProducerMax < 1 || cfg.ConsumerMax < 1 {
		return nil, fmt.Errorf("parbuffer: ProducerMax %d, ConsumerMax %d", cfg.ProducerMax, cfg.ConsumerMax)
	}
	b := &Buffer{
		buf:      make([]alps.Value, cfg.Slots),
		slotBusy: make([]atomic.Int32, cfg.Slots),
	}

	deposit := func(inv *alps.Invocation) error {
		place := inv.Hidden(0).(int)
		if !b.slotBusy[place].CompareAndSwap(0, 1) {
			b.violations.Add(1)
		}
		if cfg.CopyCost > 0 {
			time.Sleep(cfg.CopyCost) // long message copy
		}
		b.buf[place] = inv.Param(0)
		b.slotBusy[place].Store(0)
		b.deposits.Add(1)
		inv.ReturnHidden(place)
		return nil
	}
	remove := func(inv *alps.Invocation) error {
		place := inv.Hidden(0).(int)
		if !b.slotBusy[place].CompareAndSwap(0, 1) {
			b.violations.Add(1)
		}
		if cfg.CopyCost > 0 {
			time.Sleep(cfg.CopyCost)
		}
		m := b.buf[place]
		b.buf[place] = nil
		b.slotBusy[place].Store(0)
		b.removes.Add(1)
		inv.Return(m)
		inv.ReturnHidden(place)
		return nil
	}

	manager := func(m *alps.Mgr) {
		n := cfg.Slots
		// Free and Full are rings of slot indices; Max and Min count them
		// (the paper's variable names).
		free := make([]int, n)
		full := make([]int, n)
		var freeIn, freeOut, fullIn, fullOut int
		maxFree, minFull := n, 0
		for i := 0; i < n; i++ {
			free[i] = i
		}
		_ = m.Loop(
			alps.OnAccept("Deposit", func(a *alps.Accepted) {
				place := free[freeOut]
				if err := m.Start(a, place); err != nil {
					return
				}
				freeOut = (freeOut + 1) % n
				maxFree--
			}).When(func(*alps.Accepted) bool { return maxFree > 0 }),
			alps.OnAwait("Deposit", func(aw *alps.Awaited) {
				if err := m.Finish(aw); err != nil {
					return
				}
				if aw.Err != nil {
					return
				}
				full[fullIn] = aw.Hidden[0].(int)
				fullIn = (fullIn + 1) % n
				minFull++
			}),
			alps.OnAccept("Remove", func(a *alps.Accepted) {
				place := full[fullOut]
				if err := m.Start(a, place); err != nil {
					return
				}
				fullOut = (fullOut + 1) % n
				minFull--
			}).When(func(*alps.Accepted) bool { return minFull > 0 }),
			alps.OnAwait("Remove", func(aw *alps.Awaited) {
				if err := m.Finish(aw); err != nil {
					return
				}
				if aw.Err != nil {
					return
				}
				free[freeIn] = aw.Hidden[0].(int)
				freeIn = (freeIn + 1) % n
				maxFree++
			}),
		)
	}

	obj, err := alps.New("ParBuffer", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Deposit", Params: 1, Array: cfg.ProducerMax,
			HiddenParams: 1, HiddenResults: 1, Body: deposit,
		}),
		alps.WithEntry(alps.EntrySpec{
			Name: "Remove", Results: 1, Array: cfg.ConsumerMax,
			HiddenParams: 1, HiddenResults: 1, Body: remove,
		}),
		alps.WithManager(manager, alps.Intercept("Deposit"), alps.Intercept("Remove")),
	)...)
	if err != nil {
		return nil, err
	}
	b.obj = obj
	return b, nil
}

// Deposit stores a message, blocking while no buffer slot is free.
func (b *Buffer) Deposit(msg alps.Value) error {
	_, err := b.obj.Call("Deposit", msg)
	return err
}

// Remove returns a buffered message, blocking while none is available.
// Unlike the serial buffer, consumers may receive messages from any
// producer, and global FIFO order is not guaranteed — only conservation.
func (b *Buffer) Remove() (alps.Value, error) {
	res, err := b.obj.Call("Remove")
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Stats reports deposits, removes, and slot-sharing violations (always 0 if
// the manager's index bookkeeping is correct).
func (b *Buffer) Stats() (deposits, removes uint64, violations int) {
	return b.deposits.Load(), b.removes.Load(), int(b.violations.Load())
}

// Object exposes the underlying ALPS object.
func (b *Buffer) Object() *alps.Object { return b.obj }

// Close shuts the buffer down.
func (b *Buffer) Close() error { return b.obj.Close() }
