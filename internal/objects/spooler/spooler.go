// Package spooler implements the paper's printer spooler example (§2.8.1):
// a Print entry implemented as a hidden procedure array so several print
// requests are serviced simultaneously. After accepting a request the
// manager allocates a free printer and supplies its number to the Print
// procedure as a *hidden parameter*; the procedure returns the printer
// number as a *hidden result*, which "eliminates a lot of bookkeeping for
// the manager to remember which printer has been allocated to which
// procedure".
package spooler

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// PrintFunc performs the actual printing of a file on a printer.
// pages controls the simulated duration.
type PrintFunc func(printer int, file string, pages int)

// Config configures a spooler.
type Config struct {
	Printers int           // size of the printer pool
	PrintMax int           // hidden Print array size (default: 2×Printers)
	PageCost time.Duration // simulated time per page (0 = none)
	Print    PrintFunc     // optional hook invoked for each job
	ObjOpts  []alps.Option
}

// Spooler schedules print requests onto a pool of printers.
type Spooler struct {
	obj      *alps.Object
	printers int

	// busy[p] is 1 while printer p is printing; used to detect scheduling
	// violations (two jobs on one printer).
	busy       []atomic.Int32
	violations atomic.Int64
	jobs       atomic.Uint64
	perPrinter []atomic.Uint64
}

// New creates a spooler with cfg.Printers printers.
func New(cfg Config) (*Spooler, error) {
	if cfg.Printers < 1 {
		return nil, fmt.Errorf("spooler: %d printers", cfg.Printers)
	}
	if cfg.PrintMax == 0 {
		cfg.PrintMax = 2 * cfg.Printers
	}
	if cfg.PrintMax < 1 {
		return nil, fmt.Errorf("spooler: PrintMax %d", cfg.PrintMax)
	}
	s := &Spooler{
		printers:   cfg.Printers,
		busy:       make([]atomic.Int32, cfg.Printers),
		perPrinter: make([]atomic.Uint64, cfg.Printers),
	}

	print := func(inv *alps.Invocation) error {
		file := inv.Param(0).(string)
		pages := inv.Param(1).(int)
		printer := inv.Hidden(0).(int) // supplied by the manager at start

		if !s.busy[printer].CompareAndSwap(0, 1) {
			s.violations.Add(1)
		}
		if cfg.Print != nil {
			cfg.Print(printer, file, pages)
		}
		if cfg.PageCost > 0 {
			select {
			case <-time.After(time.Duration(pages) * cfg.PageCost):
			case <-inv.Done():
			}
		}
		s.busy[printer].Store(0)
		s.jobs.Add(1)
		s.perPrinter[printer].Add(1)

		inv.Return(printer)
		// The printer number goes back to the manager as a hidden result so
		// it can be returned to the free pool without any manager-side map.
		inv.ReturnHidden(printer)
		return nil
	}

	manager := func(m *alps.Mgr) {
		// Free printer pool, manager-local.
		free := make([]int, cfg.Printers)
		for i := range free {
			free[i] = i
		}
		_ = m.Loop(
			alps.OnAccept("Print", func(a *alps.Accepted) {
				p := free[len(free)-1]
				free = free[:len(free)-1]
				if err := m.Start(a, p); err != nil {
					free = append(free, p) // start failed; printer stays free
				}
			}).When(func(*alps.Accepted) bool { return len(free) > 0 }),
			alps.OnAwait("Print", func(aw *alps.Awaited) {
				if err := m.Finish(aw); err != nil {
					return
				}
				if aw.Err == nil {
					free = append(free, aw.Hidden[0].(int))
				}
			}),
		)
	}

	obj, err := alps.New("Spooler", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Print", Params: 2, Results: 1, Array: cfg.PrintMax,
			HiddenParams: 1, HiddenResults: 1, Body: print,
		}),
		alps.WithManager(manager, alps.Intercept("Print")),
	)...)
	if err != nil {
		return nil, err
	}
	s.obj = obj
	return s, nil
}

// Print submits a job and blocks until it has printed, returning the
// printer that serviced it.
func (s *Spooler) Print(file string, pages int) (printer int, err error) {
	res, err := s.obj.Call("Print", file, pages)
	if err != nil {
		return -1, err
	}
	return res[0].(int), nil
}

// Stats reports jobs printed, jobs per printer, and scheduling violations
// (two jobs on one printer at once — always 0 if the manager is correct).
func (s *Spooler) Stats() (jobs uint64, perPrinter []uint64, violations int) {
	per := make([]uint64, s.printers)
	for i := range per {
		per[i] = s.perPrinter[i].Load()
	}
	return s.jobs.Load(), per, int(s.violations.Load())
}

// Object exposes the underlying ALPS object.
func (s *Spooler) Object() *alps.Object { return s.obj }

// Close shuts the spooler down.
func (s *Spooler) Close() error { return s.obj.Close() }
