package spooler_test

import (
	"fmt"
	"log"

	"repro/internal/objects/spooler"
)

// Example prints a job; the manager allocates a printer via hidden
// parameters and recovers it via hidden results (§2.8.1).
func Example() {
	s, err := spooler.New(spooler.Config{Printers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	printer, err := s.Print("report.ps", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("printed on a real printer:", printer >= 0 && printer < 2)
	// Output: printed on a real printer: true
}
