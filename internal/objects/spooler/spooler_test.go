package spooler

import (
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Printers: 0}); err == nil {
		t.Fatal("0 printers succeeded")
	}
	if _, err := New(Config{Printers: 2, PrintMax: -1}); err == nil {
		t.Fatal("negative PrintMax succeeded")
	}
}

func TestSingleJob(t *testing.T) {
	s, err := New(Config{Printers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := s.Print("report.txt", 3)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p >= 2 {
		t.Fatalf("printed on printer %d, pool has 2", p)
	}
	jobs, _, violations := s.Stats()
	if jobs != 1 || violations != 0 {
		t.Fatalf("jobs = %d, violations = %d", jobs, violations)
	}
}

// TestNeverTwoJobsOnOnePrinter floods the spooler and relies on the per-
// printer busy flags to detect any double allocation.
func TestNeverTwoJobsOnOnePrinter(t *testing.T) {
	s, err := New(Config{Printers: 3, PrintMax: 12, PageCost: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Print("f", 2); err != nil {
				t.Errorf("Print: %v", err)
			}
		}()
	}
	wg.Wait()
	jobs, _, violations := s.Stats()
	if jobs != 60 {
		t.Fatalf("jobs = %d, want 60", jobs)
	}
	if violations != 0 {
		t.Fatalf("%d printer-sharing violations", violations)
	}
}

// TestAllPrintersUtilized checks the pool actually spreads work: with slow
// jobs and more requests than printers, every printer prints something.
func TestAllPrintersUtilized(t *testing.T) {
	const printers = 3
	s, err := New(Config{Printers: printers, PageCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Print("f", 3); err != nil {
				t.Errorf("Print: %v", err)
			}
		}()
	}
	wg.Wait()
	_, per, _ := s.Stats()
	for p, n := range per {
		if n == 0 {
			t.Errorf("printer %d printed nothing: %v", p, per)
		}
	}
}

func TestReturnedPrinterMatchesHook(t *testing.T) {
	var mu sync.Mutex
	hookPrinter := make(map[string]int)
	s, err := New(Config{
		Printers: 4,
		Print: func(printer int, file string, pages int) {
			mu.Lock()
			hookPrinter[file] = printer
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			file := string(rune('a' + i))
			p, err := s.Print(file, 1)
			if err != nil {
				t.Errorf("Print: %v", err)
				return
			}
			mu.Lock()
			want := hookPrinter[file]
			mu.Unlock()
			if p != want {
				t.Errorf("Print(%s) returned printer %d, hook saw %d", file, p, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestJobsQueueWhenPrintersBusy(t *testing.T) {
	// One printer, slow jobs: a second job must wait, not overlap.
	s, err := New(Config{Printers: 1, PrintMax: 4, PageCost: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Print("f", 2); err != nil {
				t.Errorf("Print: %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("3 jobs × 20ms on one printer finished in %v; they overlapped", elapsed)
	}
	_, _, violations := s.Stats()
	if violations != 0 {
		t.Fatalf("%d violations", violations)
	}
}
