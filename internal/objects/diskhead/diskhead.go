// Package diskhead implements a disk-head scheduler using the paper's
// run-time priority clause (§2.4): "pri E" where E may use values received
// by the accept. The manager accepts the pending Seek whose requested track
// is closest to the current head position — shortest-seek-time-first —
// something compile-time priorities cannot express.
package diskhead

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// Scheduler orders Seek requests by proximity to the disk head.
type Scheduler struct {
	obj *alps.Object

	totalSeek atomic.Int64
	services  atomic.Uint64
}

// Policy selects the scheduling discipline, each expressed as a different
// run-time priority function over the same accept guard.
type Policy int

const (
	// SSTF serves the pending request closest to the head
	// (shortest-seek-time-first), the paper's canonical pri example.
	SSTF Policy = iota + 1
	// SCAN is the elevator: requests ahead in the current sweep direction
	// first (closest first), reversing when none remain ahead.
	SCAN
	// FCFS serves requests in arrival order (pri = arrival id).
	FCFS
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SSTF:
		return "SSTF"
	case SCAN:
		return "SCAN"
	case FCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config configures the scheduler.
type Config struct {
	QueueMax  int           // hidden Seek array size (how many requests are schedulable)
	Start     int           // initial head position
	Cylinders int           // track space, needed by SCAN (default 1000)
	Policy    Policy        // scheduling discipline (default SSTF)
	TrackCost time.Duration // simulated head travel time per track moved
	ObjOpts   []alps.Option
}

// New creates a disk-head scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.QueueMax == 0 {
		cfg.QueueMax = 16
	}
	if cfg.QueueMax < 1 {
		return nil, fmt.Errorf("diskhead: QueueMax %d", cfg.QueueMax)
	}
	if cfg.Policy == 0 {
		cfg.Policy = SSTF
	}
	if cfg.Cylinders == 0 {
		cfg.Cylinders = 1000
	}
	if cfg.Cylinders < 1 {
		return nil, fmt.Errorf("diskhead: %d cylinders", cfg.Cylinders)
	}
	s := &Scheduler{}

	seek := func(inv *alps.Invocation) error {
		// The distance arrives as a hidden parameter (§2.8): the manager
		// computes it from its private head position; the body turns it
		// into simulated head travel time.
		distance := inv.Hidden(0).(int)
		if cfg.TrackCost > 0 && distance > 0 {
			select {
			case <-time.After(time.Duration(distance) * cfg.TrackCost):
			case <-inv.Done():
			}
		}
		inv.Return(inv.Param(0)) // the track, echoed back on completion
		return nil
	}

	manager := func(m *alps.Mgr) {
		head := cfg.Start
		up := true // SCAN sweep direction
		abs := func(x int) int {
			if x < 0 {
				return -x
			}
			return x
		}
		// pri computes the run-time priority of a pending request under the
		// configured discipline; smallest wins (§2.4).
		pri := func(a *alps.Accepted) int {
			track := a.Params[0].(int)
			switch cfg.Policy {
			case SCAN:
				// Requests ahead in the sweep direction rank by proximity;
				// requests behind rank after every ahead request.
				if up {
					if track >= head {
						return track - head
					}
					return cfg.Cylinders + (head - track)
				}
				if track <= head {
					return head - track
				}
				return cfg.Cylinders + (track - head)
			case FCFS:
				return int(a.CallID())
			default: // SSTF
				return abs(track - head)
			}
		}
		_ = m.Loop(
			alps.OnAccept("Seek", func(a *alps.Accepted) {
				track := a.Params[0].(int)
				distance := abs(track - head)
				s.totalSeek.Add(int64(distance))
				s.services.Add(1)
				if cfg.Policy == SCAN {
					if track > head {
						up = true
					} else if track < head {
						up = false
					}
				}
				head = track
				// The head is a serial resource: execute runs the seek to
				// completion before the next request is considered.
				if _, err := m.Execute(a, distance); err != nil {
					return
				}
			}).PriAccept(pri),
		)
	}

	obj, err := alps.New("DiskHead", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Seek", Params: 1, Results: 1, Array: cfg.QueueMax,
			HiddenParams: 1, Body: seek,
		}),
		alps.WithManager(manager, alps.InterceptPR("Seek", 1, 0)),
	)...)
	if err != nil {
		return nil, err
	}
	s.obj = obj
	return s, nil
}

// Seek requests the head to visit track; it returns when the request has
// been serviced.
func (s *Scheduler) Seek(track int) error {
	_, err := s.obj.Call("Seek", track)
	return err
}

// Stats reports the number of serviced requests and the total head travel
// distance.
func (s *Scheduler) Stats() (services uint64, totalSeek int64) {
	return s.services.Load(), s.totalSeek.Load()
}

// Object exposes the underlying ALPS object.
func (s *Scheduler) Object() *alps.Object { return s.obj }

// Close shuts the scheduler down.
func (s *Scheduler) Close() error { return s.obj.Close() }

// GreedySSTF computes the total seek distance of the offline greedy
// shortest-seek-time-first order over tracks, starting from start — the
// reference the manager's online schedule is compared against when all
// requests are pending before service begins.
func GreedySSTF(start int, tracks []int) int64 {
	remaining := append([]int(nil), tracks...)
	head := start
	var total int64
	for len(remaining) > 0 {
		best, bestDist := 0, -1
		for i, tr := range remaining {
			d := tr - head
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
		total += int64(bestDist)
		head = remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return total
}

// FIFOSeek computes the total seek distance of first-come-first-served
// order, the baseline SSTF is compared against.
func FIFOSeek(start int, tracks []int) int64 {
	head := start
	var total int64
	for _, tr := range tracks {
		d := tr - head
		if d < 0 {
			d = -d
		}
		total += int64(d)
		head = tr
	}
	return total
}
