package diskhead

import (
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{QueueMax: -1}); err == nil {
		t.Fatal("negative QueueMax succeeded")
	}
}

func TestSingleSeek(t *testing.T) {
	s, err := New(Config{QueueMax: 4, Start: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Seek(80); err != nil {
		t.Fatal(err)
	}
	services, total := s.Stats()
	if services != 1 || total != 30 {
		t.Fatalf("Stats = %d services, %d travel; want 1, 30", services, total)
	}
}

// TestSSTFOrdering pre-loads requests while the scheduler is saturated by a
// first seek, then checks the service order matches greedy SSTF, not FIFO.
func TestSSTFOrdering(t *testing.T) {
	s, err := New(Config{QueueMax: 16, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tracks := []int{90, 10, 50, 95, 12}
	var wg sync.WaitGroup
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			if err := s.Seek(tr); err != nil {
				t.Errorf("Seek(%d): %v", tr, err)
			}
		}(tr)
	}
	wg.Wait()
	_, total := s.Stats()
	fifoWorst := FIFOSeek(0, tracks)
	greedy := GreedySSTF(0, tracks)
	// The manager services whichever requests are attached when it selects;
	// under full pre-attachment it equals greedy. Concurrent arrival can
	// make it slightly worse, but it must never exceed the FIFO distance of
	// the worst ordering and should be close to greedy.
	if total > fifoWorst*2 {
		t.Fatalf("online SSTF travel %d, FIFO %d, greedy %d", total, fifoWorst, greedy)
	}
	if total < greedy {
		t.Fatalf("travel %d below offline greedy %d: accounting bug", total, greedy)
	}
}

func TestSSTFBeatsFIFOOnRandomLoad(t *testing.T) {
	// With many pending requests, SSTF's mean travel must be well below
	// FIFO's on the same request set.
	tr, err := workload.NewTracks(7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tracks := make([]int, 64)
	for i := range tracks {
		tracks[i] = tr.Next()
	}
	greedy := GreedySSTF(500, tracks)
	fifo := FIFOSeek(500, tracks)
	if greedy*2 > fifo {
		t.Fatalf("greedy SSTF %d not clearly better than FIFO %d on random load", greedy, fifo)
	}

	s, err := New(Config{QueueMax: 64, Start: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for _, track := range tracks {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			if err := s.Seek(track); err != nil {
				t.Errorf("Seek: %v", err)
			}
		}(track)
	}
	wg.Wait()
	_, total := s.Stats()
	if total > fifo {
		t.Fatalf("online SSTF travel %d exceeds FIFO %d", total, fifo)
	}
}

func TestGreedyAndFIFOHelpers(t *testing.T) {
	if got := GreedySSTF(0, nil); got != 0 {
		t.Fatalf("GreedySSTF(empty) = %d", got)
	}
	if got := FIFOSeek(10, []int{20, 5}); got != 10+15 {
		t.Fatalf("FIFOSeek = %d, want 25", got)
	}
	if got := GreedySSTF(10, []int{20, 5}); got != 5+15 {
		t.Fatalf("GreedySSTF = %d, want 20 (5 first)", got)
	}
}

func TestPolicyString(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{SSTF, "SSTF"}, {SCAN, "SCAN"}, {FCFS, "FCFS"}, {Policy(9), "Policy(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestConfigValidationPolicyFields(t *testing.T) {
	if _, err := New(Config{QueueMax: 4, Cylinders: -1}); err == nil {
		t.Fatal("negative cylinders succeeded")
	}
}

// TestSCANSweepsInOneDirection pre-loads requests on both sides of the
// head; SCAN must serve everything ahead (ascending) before reversing,
// unlike SSTF which may zig-zag.
func TestSCANSweepsInOneDirection(t *testing.T) {
	s, err := New(Config{
		QueueMax:  16,
		Start:     500,
		Cylinders: 1000,
		Policy:    SCAN,
		TrackCost: 50 * time.Microsecond, // let the queue build
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tracks := []int{600, 400, 700, 300, 550, 450}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var served []int
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			if err := s.Seek(tr); err != nil {
				t.Errorf("Seek(%d): %v", tr, err)
				return
			}
			mu.Lock()
			served = append(served, tr)
			mu.Unlock()
		}(tr)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// After the first (arrival-dependent) pick, the order must be a single
	// ascending run followed by a single descending run, or vice versa —
	// i.e. at most one direction change after the first service.
	changes := 0
	for i := 2; i < len(served); i++ {
		prevUp := served[i-1] > served[i-2]
		curUp := served[i] > served[i-1]
		if prevUp != curUp {
			changes++
		}
	}
	if changes > 1 {
		t.Fatalf("service order %v has %d direction changes; SCAN allows at most 1", served, changes)
	}
}

// TestFCFSServesInArrivalOrder staggers arrivals and checks FCFS order.
func TestFCFSServesInArrivalOrder(t *testing.T) {
	s, err := New(Config{QueueMax: 16, Start: 0, Policy: FCFS, TrackCost: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	var served []int
	var wg sync.WaitGroup
	tracks := []int{900, 10, 800, 20, 700}
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			if err := s.Seek(tr); err != nil {
				t.Errorf("Seek: %v", err)
				return
			}
			mu.Lock()
			served = append(served, tr)
			mu.Unlock()
		}(tr)
		time.Sleep(2 * time.Millisecond) // define arrival order
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, tr := range served {
		if tr != tracks[i] {
			t.Fatalf("FCFS order %v, want %v", served, tracks)
		}
	}
}
