// Package philosophers solves dining philosophers with an ALPS manager:
// the Dine entry's acceptance condition reads the philosopher's seat from
// the invocation parameters and admits the call only while *both* forks
// are free, taking them atomically. Hold-and-wait never occurs, so the
// classic deadlock cannot: centralized allocation through the manager is
// exactly the paper's answer to scattered synchronization (§1).
package philosophers

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// Table seats N philosophers around N shared forks.
type Table struct {
	obj *alps.Object
	n   int

	meals      atomic.Uint64
	eating     []atomic.Int32 // per-seat eating flag, for violation detection
	violations atomic.Int64   // adjacent philosophers eating simultaneously
}

// Config configures a table.
type Config struct {
	Seats   int           // philosophers (and forks); at least 2
	EatTime time.Duration // simulated eating time per meal
	ObjOpts []alps.Option
}

// New lays the table.
func New(cfg Config) (*Table, error) {
	if cfg.Seats < 2 {
		return nil, fmt.Errorf("philosophers: %d seats", cfg.Seats)
	}
	t := &Table{n: cfg.Seats, eating: make([]atomic.Int32, cfg.Seats)}

	dine := func(inv *alps.Invocation) error {
		seat, ok := inv.Param(0).(int)
		if !ok || seat < 0 || seat >= t.n {
			return fmt.Errorf("philosophers: invalid seat %v", inv.Param(0))
		}
		left := seat
		right := (seat + 1) % t.n
		// Violation oracle: my neighbours must not be eating now.
		if t.eating[(seat+t.n-1)%t.n].Load() == 1 || t.eating[right].Load() == 1 {
			t.violations.Add(1)
		}
		t.eating[seat].Store(1)
		if cfg.EatTime > 0 {
			time.Sleep(cfg.EatTime)
		}
		t.eating[seat].Store(0)
		t.meals.Add(1)
		_ = left
		return nil
	}

	manager := func(m *alps.Mgr) {
		forkFree := make([]bool, t.n)
		for i := range forkFree {
			forkFree[i] = true
		}
		forks := func(seat int) (int, int) { return seat, (seat + 1) % t.n }
		_ = m.Loop(
			alps.OnAccept("Dine", func(a *alps.Accepted) {
				seat, ok := a.Params[0].(int)
				if !ok || seat < 0 || seat >= t.n {
					// Malformed call: start without forks; the body rejects it.
					_ = m.Start(a)
					return
				}
				l, r := forks(seat)
				if err := m.Start(a); err == nil {
					forkFree[l], forkFree[r] = false, false
				}
			}).When(func(a *alps.Accepted) bool {
				seat, ok := a.Params[0].(int)
				if !ok || seat < 0 || seat >= t.n {
					return true // admit immediately; the body rejects it
				}
				l, r := forks(seat)
				return forkFree[l] && forkFree[r]
			}),
			alps.OnAwait("Dine", func(aw *alps.Awaited) {
				// The seat comes back as a hidden result so the manager
				// needs no slot→seat bookkeeping (§2.8).
				if err := m.Finish(aw); err != nil {
					return
				}
				if aw.Err == nil {
					if seat, ok := aw.Hidden[0].(int); ok {
						l, r := forks(seat)
						forkFree[l], forkFree[r] = true, true
					}
				}
			}),
		)
	}

	body := func(inv *alps.Invocation) error {
		if err := dine(inv); err != nil {
			return err
		}
		inv.ReturnHidden(inv.Param(0))
		return nil
	}

	obj, err := alps.New("Philosophers", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Dine", Params: 1, Array: cfg.Seats, HiddenResults: 1, Body: body,
		}),
		alps.WithManager(manager, alps.InterceptPR("Dine", 1, 0)),
	)...)
	if err != nil {
		return nil, err
	}
	t.obj = obj
	return t, nil
}

// Dine has philosopher seat eat one meal, blocking until both forks are
// granted and the meal completes.
func (t *Table) Dine(seat int) error {
	if seat < 0 || seat >= t.n {
		return fmt.Errorf("philosophers: seat %d of %d", seat, t.n)
	}
	_, err := t.obj.Call("Dine", seat)
	return err
}

// Stats reports meals served and adjacency violations (two neighbours
// eating simultaneously — always 0 if the manager allocates correctly).
func (t *Table) Stats() (meals uint64, violations int) {
	return t.meals.Load(), int(t.violations.Load())
}

// Seats reports the table size.
func (t *Table) Seats() int { return t.n }

// Object exposes the underlying ALPS object.
func (t *Table) Object() *alps.Object { return t.obj }

// Close clears the table.
func (t *Table) Close() error { return t.obj.Close() }
