package philosophers

import (
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Seats: 1}); err == nil {
		t.Fatal("1 seat succeeded")
	}
}

func TestSeatValidation(t *testing.T) {
	tbl, err := New(Config{Seats: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if err := tbl.Dine(-1); err == nil {
		t.Fatal("Dine(-1) succeeded")
	}
	if err := tbl.Dine(3); err == nil {
		t.Fatal("Dine(3) succeeded")
	}
	if tbl.Seats() != 3 {
		t.Fatalf("Seats = %d", tbl.Seats())
	}
}

func TestSingleMeal(t *testing.T) {
	tbl, err := New(Config{Seats: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if err := tbl.Dine(2); err != nil {
		t.Fatal(err)
	}
	meals, violations := tbl.Stats()
	if meals != 1 || violations != 0 {
		t.Fatalf("Stats = %d, %d", meals, violations)
	}
}

// TestNoDeadlockNoAdjacentEating is the classic stress: all philosophers
// repeatedly hungry at once. The run must finish (no deadlock) and no two
// neighbours may ever eat simultaneously.
func TestNoDeadlockNoAdjacentEating(t *testing.T) {
	const seats, rounds = 5, 20
	tbl, err := New(Config{Seats: seats, EatTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for seat := 0; seat < seats; seat++ {
			wg.Add(1)
			go func(seat int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if err := tbl.Dine(seat); err != nil {
						t.Errorf("Dine(%d): %v", seat, err)
						return
					}
				}
			}(seat)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("philosophers deadlocked")
	}
	meals, violations := tbl.Stats()
	if meals != seats*rounds {
		t.Fatalf("meals = %d, want %d", meals, seats*rounds)
	}
	if violations != 0 {
		t.Fatalf("%d adjacency violations", violations)
	}
}

// TestNonAdjacentEatConcurrently: with 5 seats and slow meals, seats 0 and
// 2 can eat at the same time — the manager does not serialize the table.
func TestNonAdjacentEatConcurrently(t *testing.T) {
	tbl, err := New(Config{Seats: 5, EatTime: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for _, seat := range []int{0, 2} {
		wg.Add(1)
		go func(seat int) {
			defer wg.Done()
			if err := tbl.Dine(seat); err != nil {
				t.Errorf("Dine(%d): %v", seat, err)
			}
		}(seat)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed >= 55*time.Millisecond {
		t.Fatalf("non-adjacent meals took %v; they were serialized", elapsed)
	}
}

func TestMalformedDirectCallRejected(t *testing.T) {
	tbl, err := New(Config{Seats: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	// Bypass the wrapper: bad seat and bad type go straight to the object.
	if _, err := tbl.Object().Call("Dine", 99); err == nil {
		t.Fatal("out-of-range seat succeeded")
	}
	if _, err := tbl.Object().Call("Dine", "two"); err == nil {
		t.Fatal("non-int seat succeeded")
	}
	// The table still works afterwards.
	if err := tbl.Dine(1); err != nil {
		t.Fatal(err)
	}
	if merr := tbl.Object().ManagerErr(); merr != nil {
		t.Fatalf("manager crashed: %v", merr)
	}
}
