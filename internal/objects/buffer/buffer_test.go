package buffer

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	alps "repro"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
}

func TestFIFOSingleProducerConsumer(t *testing.T) {
	b, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const items = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			if err := b.Deposit(i); err != nil {
				t.Errorf("Deposit: %v", err)
				return
			}
		}
	}()
	for i := 0; i < items; i++ {
		v, err := b.Remove()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("Remove = %v, want %d (FIFO violated)", v, i)
		}
	}
	wg.Wait()
}

func TestDepositBlocksWhenFull(t *testing.T) {
	b, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 2; i++ {
		if err := b.Deposit(i); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- b.Deposit(99) }()
	select {
	case <-done:
		t.Fatal("Deposit into full buffer returned")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := b.Remove(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Deposit did not unblock after Remove")
	}
}

func TestRemoveBlocksWhenEmpty(t *testing.T) {
	b, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	done := make(chan alps.Value, 1)
	go func() {
		v, err := b.Remove()
		if err != nil {
			t.Errorf("Remove: %v", err)
		}
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("Remove on empty buffer returned %v", v)
	case <-time.After(50 * time.Millisecond):
	}
	if err := b.Deposit("x"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "x" {
			t.Fatalf("Remove = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Remove did not unblock after Deposit")
	}
}

func TestMultipleProducersConsumersConservation(t *testing.T) {
	b, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const producers, perProducer = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Deposit([2]int{p, i}); err != nil {
					t.Errorf("Deposit: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[[2]int]bool)
	lastPer := map[int]int{}
	var cwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < producers*perProducer/2; i++ {
				v, err := b.Remove()
				if err != nil {
					t.Errorf("Remove: %v", err)
					return
				}
				key := v.([2]int)
				mu.Lock()
				if seen[key] {
					t.Errorf("duplicate message %v", key)
				}
				seen[key] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d messages, want %d", len(seen), producers*perProducer)
	}
	_ = lastPer
}

func TestCloseUnblocksCallers(t *testing.T) {
	b, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Remove()
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, alps.ErrClosed) {
			t.Fatalf("Remove after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Remove")
	}
}

// Property: for random buffer sizes and item counts, every deposited item is
// removed exactly once and per-producer order is preserved.
func TestQuickConservationAndOrder(t *testing.T) {
	f := func(sizeRaw, itemsRaw uint8) bool {
		size := int(sizeRaw%7) + 1
		items := int(itemsRaw%50) + 1
		b, err := New(size)
		if err != nil {
			return false
		}
		defer b.Close()
		go func() {
			for i := 0; i < items; i++ {
				if err := b.Deposit(i); err != nil {
					return
				}
			}
		}()
		for i := 0; i < items; i++ {
			v, err := b.Remove()
			if err != nil || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
