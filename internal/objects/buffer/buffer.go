// Package buffer implements the paper's first example (§2.4.1): a bounded
// buffer object whose manager accepts Deposit only while the buffer is not
// full and Remove only while it is not empty, executing each accepted call
// to completion before accepting another.
//
// The shared data part (Buf, Inptr, Outptr) is mutated by the Deposit and
// Remove procedure bodies; the manager-local Count variable gates
// acceptance. Because the manager uses execute (start; await; finish), the
// bodies run in mutual exclusion and need no synchronization of their own —
// the entire scheduling policy lives in one place.
package buffer

import (
	"fmt"
	"time"

	alps "repro"
)

// Buffer is a bounded buffer shared by one or more producers and consumers.
type Buffer struct {
	obj *alps.Object

	// Shared data part. Exclusive access is guaranteed by the manager's
	// execute discipline, not by locks.
	buf    []alps.Value
	inptr  int
	outptr int
}

// New creates a bounded buffer with n slots. Extra object options (tracing,
// pool mode) may be supplied.
func New(n int, opts ...alps.Option) (*Buffer, error) {
	return NewCost(n, 0, opts...)
}

// NewCost creates a bounded buffer whose message copies additionally take
// copyCost of simulated time each. Because this buffer's manager executes
// every call to completion, the copies serialize — the comparison point for
// the parallel buffer of §2.8.2 (experiment E5).
func NewCost(n int, copyCost time.Duration, opts ...alps.Option) (*Buffer, error) {
	if n < 1 {
		return nil, fmt.Errorf("buffer: size %d", n)
	}
	b := &Buffer{buf: make([]alps.Value, n)}

	deposit := func(inv *alps.Invocation) error {
		if copyCost > 0 {
			time.Sleep(copyCost) // long message copy, inside the exclusion
		}
		b.buf[b.inptr] = inv.Param(0)
		b.inptr = (b.inptr + 1) % n
		return nil
	}
	remove := func(inv *alps.Invocation) error {
		if copyCost > 0 {
			time.Sleep(copyCost)
		}
		m := b.buf[b.outptr]
		b.buf[b.outptr] = nil
		b.outptr = (b.outptr + 1) % n
		inv.Return(m)
		return nil
	}
	manager := func(m *alps.Mgr) {
		count := 0 // manager-local synchronization state
		_ = m.Loop(
			alps.OnAccept("Deposit", func(a *alps.Accepted) {
				if _, err := m.Execute(a); err == nil {
					count++
				}
			}).When(func(*alps.Accepted) bool { return count < n }),
			alps.OnAccept("Remove", func(a *alps.Accepted) {
				if _, err := m.Execute(a); err == nil {
					count--
				}
			}).When(func(*alps.Accepted) bool { return count > 0 }),
		)
	}

	obj, err := alps.New("Buffer", append(opts,
		alps.WithEntry(alps.EntrySpec{Name: "Deposit", Params: 1, Body: deposit}),
		alps.WithEntry(alps.EntrySpec{Name: "Remove", Results: 1, Body: remove}),
		alps.WithManager(manager, alps.Intercept("Deposit"), alps.Intercept("Remove")),
	)...)
	if err != nil {
		return nil, err
	}
	b.obj = obj
	return b, nil
}

// Deposit stores a message, blocking while the buffer is full.
func (b *Buffer) Deposit(msg alps.Value) error {
	_, err := b.obj.Call("Deposit", msg)
	return err
}

// Remove returns the oldest message, blocking while the buffer is empty.
func (b *Buffer) Remove() (alps.Value, error) {
	res, err := b.obj.Call("Remove")
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Object exposes the underlying ALPS object (for tracing and experiments).
func (b *Buffer) Object() *alps.Object { return b.obj }

// Close shuts the buffer down; blocked callers fail with alps.ErrClosed.
func (b *Buffer) Close() error { return b.obj.Close() }
