package buffer_test

import (
	"fmt"
	"log"

	"repro/internal/objects/buffer"
)

// Example is the paper's §2.4.1 bounded buffer in three calls.
func Example() {
	b, err := buffer.New(4)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	if err := b.Deposit("hello"); err != nil {
		log.Fatal(err)
	}
	msg, err := b.Remove()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msg)
	// Output: hello
}
