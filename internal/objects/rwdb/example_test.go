package rwdb_test

import (
	"fmt"
	"log"

	"repro/internal/objects/rwdb"
)

// Example reads and writes the §2.5.1 database; up to ReadMax readers may
// overlap while the manager keeps writers exclusive.
func Example() {
	db, err := rwdb.New(rwdb.Config{ReadMax: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Write(7, 42); err != nil {
		log.Fatal(err)
	}
	v, ok, err := db.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok)
	// Output: 42 true
}
