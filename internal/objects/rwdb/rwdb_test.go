package rwdb

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	alps "repro"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ReadMax: 0}); err == nil {
		t.Fatal("New(0) succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	db, err := New(Config{ReadMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, ok, err := db.Read(1); err != nil || ok {
		t.Fatalf("Read(missing) = ok=%v, err=%v", ok, err)
	}
	if err := db.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Read(1)
	if err != nil || !ok || v != 42 {
		t.Fatalf("Read = %d, %v, %v", v, ok, err)
	}
}

// TestNoExclusionViolations drives a heavy mixed workload and asserts the
// safety invariant: never a writer with a concurrent reader or writer, and
// never more than ReadMax concurrent readers. The race detector additionally
// verifies that the unlocked shared map is never accessed concurrently with
// a write — the manager's scheduling is the only protection.
func TestNoExclusionViolations(t *testing.T) {
	const readMax = 4
	db, err := New(Config{ReadMax: readMax})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := db.Write(i%8, w*1000+i); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := db.Read(i % 8); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	peak, violations := db.Stats()
	if violations != 0 {
		t.Fatalf("%d exclusion violations", violations)
	}
	if peak > readMax {
		t.Fatalf("peak concurrent readers %d > ReadMax %d", peak, readMax)
	}
	db.Close()
}

// TestReadersRunConcurrently verifies the whole point of the hidden
// procedure array: multiple Read bodies are in flight at once (up to
// ReadMax), which a monitor-style solution would serialize.
func TestReadersRunConcurrently(t *testing.T) {
	const readMax = 3
	db, err := New(Config{ReadMax: readMax, ReadCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Readers that can only all complete if readMax run concurrently: each
	// blocks until readMax are inside. We approximate with slow reads and a
	// peak check, since bodies can't rendezvous through the public API.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := db.Read(0); err != nil {
				t.Errorf("Read: %v", err)
			}
		}()
	}
	wg.Wait()
	peak, _ := db.Stats()
	if peak < 2 {
		t.Fatalf("peak concurrent readers = %d; hidden array should admit up to %d", peak, readMax)
	}
	if peak > readMax {
		t.Fatalf("peak concurrent readers = %d > ReadMax %d", peak, readMax)
	}
}

// TestWriterNotStarved checks the paper's anti-starvation disjunction: with
// a continuous stream of readers, a writer still gets through.
func TestWriterNotStarved(t *testing.T) {
	db, err := New(Config{ReadMax: 4, ReadCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := db.Read(0); err != nil {
					return
				}
			}
		}()
	}
	writeDone := make(chan error, 1)
	go func() {
		err := db.Write(0, 7)
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer starved by continuous readers")
	}
	close(stop)
	wg.Wait()
}

// TestReaderNotStarved is the symmetric case: continuous writers, a reader
// still gets through (the writerLast alternation).
func TestReaderNotStarved(t *testing.T) {
	db, err := New(Config{ReadMax: 2, WriteCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.Write(i%4, i); err != nil {
					return
				}
			}
		}()
	}
	readDone := make(chan error, 1)
	go func() {
		_, _, err := db.Read(0)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader starved by continuous writers")
	}
	close(stop)
	wg.Wait()
}

func TestUsersSeeSingleProcedure(t *testing.T) {
	// §2.5: the array structure is invisible — callers call "Read", and the
	// definition part reports it as one procedure.
	db, err := New(Config{ReadMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	spec, ok := db.Object().EntryInfo("Read")
	if !ok {
		t.Fatal("no Read entry")
	}
	if spec.Array != 8 {
		t.Fatalf("implementation array = %d, want ReadMax", spec.Array)
	}
	var _ = spec // callers still just say db.Read(key)
	if _, _, err := db.Read(3); err != nil {
		t.Fatal(err)
	}
}

func TestCloseFailsCallers(t *testing.T) {
	db, err := New(Config{ReadMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Write(1, 1); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if _, _, err := db.Read(1); err == nil {
		t.Fatal("Read after Close succeeded")
	}
	_ = alps.ErrClosed
}

// TestQuickQuiescentConsistency: after all concurrent operations complete,
// every key holds the value of one of the writes issued for it, and a
// fresh read agrees with a second fresh read (the database is stable at
// quiescence).
func TestQuickQuiescentConsistency(t *testing.T) {
	f := func(seed uint16) bool {
		db, err := New(Config{ReadMax: 3})
		if err != nil {
			return false
		}
		defer db.Close()
		const keys, writers, per = 4, 3, 10
		issued := make([][]int, keys) // issued[k] = values written to k
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					k := (int(seed) + w + i) % keys
					v := w*1000 + i
					mu.Lock()
					issued[k] = append(issued[k], v)
					mu.Unlock()
					if err := db.Write(k, v); err != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for k := 0; k < keys; k++ {
			v1, ok1, err1 := db.Read(k)
			v2, ok2, err2 := db.Read(k)
			if err1 != nil || err2 != nil {
				return false
			}
			if ok1 != ok2 || (ok1 && v1 != v2) {
				return false // unstable at quiescence
			}
			if !ok1 {
				mu.Lock()
				empty := len(issued[k]) == 0
				mu.Unlock()
				if !empty {
					return false // a write vanished
				}
				continue
			}
			found := false
			mu.Lock()
			for _, v := range issued[k] {
				if v == v1 {
					found = true
					break
				}
			}
			mu.Unlock()
			if !found {
				return false // value from nowhere
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRoundTrip runs the database against a real on-disk ledger
// through the alps facade: writes journal (reads and snapshots don't), a
// checkpoint prunes the log, and a fresh process-worth of state recovers
// by restore + replay through the object's own call surface. The journal
// uses Wait:true — the local-embedding mode where Write doesn't return
// until its outcome is fsynced.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()

	open := func() (*DB, *alps.ObjectJournal, *alps.DurableStore) {
		t.Helper()
		store, err := alps.OpenStore(dir, alps.DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j := store.Journal("Database", alps.JournalOptions{Skip: JournalSkip, Wait: true})
		db, err := New(Config{ReadMax: 4, ObjOpts: []alps.Option{
			alps.WithObjectOptions(alps.ObjectOptions{Journal: j}),
		}})
		if err != nil {
			t.Fatal(err)
		}
		return db, j, store
	}

	db, j, store := open()
	if _, err := j.Recover(db.Hooks()); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if err := db.Write(k, 10+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := db.Write(0, 99); err != nil { // past the checkpoint: replayed from the log
		t.Fatal(err)
	}
	if _, _, err := db.Read(0); err != nil { // reads must not journal
		t.Fatal(err)
	}
	_ = db.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	db2, j2, store2 := open()
	defer db2.Close()
	defer store2.Close()
	replayed, err := j2.Recover(db2.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-snapshot write)", replayed)
	}
	st := store2.Stats()
	if st.SnapshotAt == 0 {
		t.Fatal("recovery did not load the snapshot")
	}
	want := map[int]int{0: 99, 1: 11, 2: 12, 3: 13, 4: 14}
	for k, wv := range want {
		v, ok, err := db2.Read(k)
		if err != nil || !ok || v != wv {
			t.Fatalf("Read(%d) = %d, %v, %v; want %d", k, v, ok, err, wv)
		}
	}
}
