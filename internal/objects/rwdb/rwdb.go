// Package rwdb implements the paper's readers-writers example (§2.5.1): a
// database object whose Read entry is a hidden procedure array of ReadMax
// elements, so up to ReadMax readers access the database simultaneously,
// while writers run in exclusion. Starvation freedom follows the paper's
// alternation rule: a read is accepted if there are no pending writes *or a
// writer has just used the database*; a write is accepted if no readers are
// active and there are no pending reads *or a writer is due its turn*.
package rwdb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// Config configures a readers-writers database.
type Config struct {
	ReadMax   int           // hidden Read array size (max concurrent readers)
	ReadCost  time.Duration // simulated I/O per read (0 = none)
	WriteCost time.Duration // simulated I/O per write (0 = none)
	ObjOpts   []alps.Option
}

// DB is a readers-writers database managed by an ALPS manager.
type DB struct {
	obj     *alps.Object
	readMax int

	// Shared data part: concurrent readers, exclusive writers — guaranteed
	// by the manager, not by locks (the race detector verifies this in the
	// tests).
	data map[int]int

	// Monitoring counters (atomic: incremented from concurrent read bodies).
	curReaders  atomic.Int64
	peakReaders atomic.Int64
	violations  atomic.Int64 // writer overlapped a reader or another writer
	writerIn    atomic.Bool
}

// New creates a database admitting at most cfg.ReadMax concurrent readers.
func New(cfg Config) (*DB, error) {
	if cfg.ReadMax < 1 {
		return nil, fmt.Errorf("rwdb: ReadMax %d", cfg.ReadMax)
	}
	db := &DB{readMax: cfg.ReadMax, data: make(map[int]int)}

	read := func(inv *alps.Invocation) error {
		if db.writerIn.Load() {
			db.violations.Add(1)
		}
		cur := db.curReaders.Add(1)
		for {
			peak := db.peakReaders.Load()
			if cur <= peak || db.peakReaders.CompareAndSwap(peak, cur) {
				break
			}
		}
		if cfg.ReadCost > 0 {
			time.Sleep(cfg.ReadCost) // simulated database I/O
		}
		key := inv.Param(0).(int)
		v, ok := db.data[key]
		db.curReaders.Add(-1)
		inv.Return(v, ok)
		return nil
	}
	write := func(inv *alps.Invocation) error {
		if db.curReaders.Load() > 0 || !db.writerIn.CompareAndSwap(false, true) {
			db.violations.Add(1)
		}
		if cfg.WriteCost > 0 {
			time.Sleep(cfg.WriteCost)
		}
		db.data[inv.Param(0).(int)] = inv.Param(1).(int)
		db.writerIn.Store(false)
		return nil
	}

	// snapshot serializes the data part for a durability checkpoint. It runs
	// via m.Execute, so no writer can be mid-update while it encodes; active
	// readers are harmless (the map is only read on both sides).
	snapshot := func(inv *alps.Invocation) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(db.data); err != nil {
			return err
		}
		inv.Return(buf.Bytes())
		return nil
	}

	manager := func(m *alps.Mgr) {
		readCount := 0      // active readers
		writerLast := false // the last completed user was a writer
		_ = m.Loop(
			alps.OnAccept("Read", func(a *alps.Accepted) {
				if err := m.Start(a); err == nil {
					readCount++
				}
			}).When(func(*alps.Accepted) bool {
				return readCount < db.readMax && (m.Pending("Write") == 0 || writerLast)
			}),
			alps.OnAwait("Read", func(aw *alps.Awaited) {
				if err := m.Finish(aw); err == nil {
					readCount--
					writerLast = false
				}
			}),
			alps.OnAccept("Write", func(a *alps.Accepted) {
				// execute: the manager runs the writer to completion before
				// accepting anything else — writers are exclusive.
				if _, err := m.Execute(a); err == nil {
					writerLast = true
				}
			}).When(func(*alps.Accepted) bool {
				return readCount == 0 && (m.Pending("Read") == 0 || !writerLast)
			}),
			// Snapshot is accepted unconditionally: Execute keeps it exclusive
			// with writers (the only mutators), and making it wait on the
			// read/write alternation would let a hot workload starve
			// checkpoints. It does not perturb writerLast — a checkpoint is
			// not a database user under the paper's fairness rule.
			alps.OnAccept("Snapshot", func(a *alps.Accepted) {
				_, _ = m.Execute(a)
			}),
		)
	}

	obj, err := alps.New("Database", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{Name: "Read", Params: 1, Results: 2, Array: cfg.ReadMax, Body: read}),
		alps.WithEntry(alps.EntrySpec{Name: "Write", Params: 2, Body: write}),
		alps.WithEntry(alps.EntrySpec{Name: "Snapshot", Results: 1, Body: snapshot}),
		alps.WithManager(manager, alps.Intercept("Read"), alps.Intercept("Write"), alps.Intercept("Snapshot")),
	)...)
	if err != nil {
		return nil, err
	}
	db.obj = obj
	return db, nil
}

// Read returns the value stored at key.
func (db *DB) Read(key int) (int, bool, error) {
	res, err := db.obj.Call("Read", key)
	if err != nil {
		return 0, false, err
	}
	return res[0].(int), res[1].(bool), nil
}

// Write stores value at key.
func (db *DB) Write(key, value int) error {
	_, err := db.obj.Call("Write", key, value)
	return err
}

// Stats reports observed concurrency: the peak number of simultaneous
// readers and the number of exclusion violations (always 0 if the manager
// is correct).
func (db *DB) Stats() (peakReaders int, violations int) {
	return int(db.peakReaders.Load()), int(db.violations.Load())
}

// SnapshotState captures the database contents for a durability
// checkpoint. It goes through the object's own call surface (the Snapshot
// entry), so the manager's exclusion — not a lock — guarantees the blob is
// consistent with every acknowledged write.
func (db *DB) SnapshotState() ([]byte, error) {
	res, err := db.obj.Call("Snapshot")
	if err != nil {
		return nil, err
	}
	return res[0].([]byte), nil
}

// RestoreState replaces the database contents with a blob produced by
// SnapshotState. Recovery-only: it writes the data part directly and must
// run before the object serves traffic.
func (db *DB) RestoreState(blob []byte) error {
	m := make(map[int]int)
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&m); err != nil {
		return fmt.Errorf("rwdb: restore: %w", err)
	}
	db.data = m
	return nil
}

// Hooks wires the database to a durability journal: restore loads a
// checkpoint blob, replay re-executes journaled writes through the call
// surface (last-write-wins makes at-least-once replay idempotent), and
// snapshot captures state for future checkpoints (docs/DURABILITY.md).
func (db *DB) Hooks() alps.RecoverHooks {
	return alps.RecoverHooks{
		Restore: db.RestoreState,
		Replay: func(entry string, params []any) error {
			_, err := db.obj.Call(entry, params...)
			return err
		},
		Snapshot: db.SnapshotState,
	}
}

// JournalSkip reports which entries stay out of the durable ledger: reads
// make no state transition, and the Snapshot entry is the checkpoint
// mechanism itself.
func JournalSkip(entry string) bool { return entry != "Write" }

// ReadMax reports the configured reader bound.
func (db *DB) ReadMax() int { return db.readMax }

// Object exposes the underlying ALPS object.
func (db *DB) Object() *alps.Object { return db.obj }

// Close shuts the database down.
func (db *DB) Close() error { return db.obj.Close() }
