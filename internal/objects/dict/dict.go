// Package dict implements the paper's dictionary database example (§2.7.1):
// a Search entry exported as a single procedure, implemented as a hidden
// procedure array of SearchMax elements so multiple queries are serviced
// simultaneously — and a manager that *combines* requests for a word that is
// already being searched, answering the followers from the leader's result
// without starting their bodies. The paper calls this a software adaptation
// of the NYU Ultracomputer's memory combining.
//
// The manager's intercepts clause is "intercepts Search(String; String)":
// it receives the queried word at accept and the meaning at await, which is
// exactly what combining requires.
package dict

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
)

// LookupFunc computes the meaning of a word (the actual database search).
type LookupFunc func(word string) string

// DefaultLookup is used when no lookup function is supplied.
func DefaultLookup(word string) string { return "meaning of " + word }

// Dict is a combining dictionary database.
type Dict struct {
	obj *alps.Object

	requests   atomic.Uint64 // calls answered
	executions atomic.Uint64 // bodies actually started
	combined   atomic.Uint64 // calls answered from another call's execution
}

// Options configures a dictionary.
type Options struct {
	Name       string        // object name (default "Dictionary"; shard replicas need distinct names)
	SearchMax  int           // hidden array size (default 8)
	MaxActive  int           // max concurrent search executions (0 = SearchMax)
	SearchCost time.Duration // simulated per-search database scan time
	Lookup     LookupFunc    // meaning function (default DefaultLookup)
	Combine    bool          // enable request combining (§2.7)
	ObjOpts    []alps.Option
}

// New creates a dictionary object.
func New(opts Options) (*Dict, error) {
	if opts.SearchMax == 0 {
		opts.SearchMax = 8
	}
	if opts.SearchMax < 1 {
		return nil, fmt.Errorf("dict: SearchMax %d", opts.SearchMax)
	}
	if opts.Lookup == nil {
		opts.Lookup = DefaultLookup
	}
	d := &Dict{}

	search := func(inv *alps.Invocation) error {
		d.executions.Add(1)
		if opts.SearchCost > 0 {
			// Stand-in for scanning the dictionary database.
			select {
			case <-time.After(opts.SearchCost):
			case <-inv.Done():
			}
		}
		inv.Return(opts.Lookup(inv.Param(0).(string)))
		return nil
	}

	maxActive := opts.MaxActive
	if maxActive <= 0 {
		maxActive = opts.SearchMax
	}
	manager := func(m *alps.Mgr) {
		// word -> leader's slot; word -> accepted followers awaiting the
		// leader's meaning. The slot-to-word map lets await find the word
		// without the body returning it as a hidden result. MaxActive
		// bounds the simultaneous search executions (the database has
		// limited bandwidth); accepted requests that cannot start yet are
		// queued manager-side, where they remain visible for combining.
		leaders := make(map[string]int)  // word -> leader slot
		slotWord := make(map[int]string) // leader slot -> word
		followers := make(map[string][]*alps.Accepted)
		var startQueue []*alps.Accepted
		active := 0

		startOrJoin := func(a *alps.Accepted) {
			word := a.Params[0].(string)
			if opts.Combine {
				if _, inFlight := leaders[word]; inFlight {
					// Record that word is now being searched on behalf of
					// this request too; do not start another body.
					followers[word] = append(followers[word], a)
					return
				}
			}
			if active >= maxActive {
				startQueue = append(startQueue, a)
				return
			}
			if opts.Combine {
				leaders[word] = a.Slot
				slotWord[a.Slot] = word
			}
			if err := m.Start(a); err == nil {
				active++
			}
		}

		_ = m.Loop(
			alps.OnAccept("Search", func(a *alps.Accepted) {
				d.requests.Add(1)
				startOrJoin(a)
			}),
			alps.OnAwait("Search", func(aw *alps.Awaited) {
				meaning := ""
				if aw.Err == nil {
					meaning = aw.Results[0].(string)
				}
				if err := m.Finish(aw, aw.Results...); err != nil {
					return
				}
				active--
				if opts.Combine {
					if word, ok := slotWord[aw.Slot]; ok {
						delete(slotWord, aw.Slot)
						delete(leaders, word)
						for _, f := range followers[word] {
							// Combining: finish the follower without starting it.
							if err := m.FinishAccepted(f, meaning); err == nil {
								d.combined.Add(1)
							}
						}
						delete(followers, word)
					}
				}
				for active < maxActive && len(startQueue) > 0 {
					next := startQueue[0]
					startQueue = startQueue[1:]
					startOrJoin(next)
				}
			}),
		)
	}

	if opts.Name == "" {
		opts.Name = "Dictionary"
	}
	obj, err := alps.New(opts.Name, append(opts.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Search", Params: 1, Results: 1, Array: opts.SearchMax, Body: search,
		}),
		alps.WithManager(manager, alps.InterceptPR("Search", 1, 1)),
	)...)
	if err != nil {
		return nil, err
	}
	d.obj = obj
	return d, nil
}

// Search returns the meaning of word, blocking until the (possibly shared)
// database search completes.
func (d *Dict) Search(word string) (string, error) {
	res, err := d.obj.Call("Search", word)
	if err != nil {
		return "", err
	}
	return res[0].(string), nil
}

// Stats reports requests accepted (counted manager-side, so remote calls
// are included), search bodies executed, and requests answered by
// combining. With combining off, executions == requests.
func (d *Dict) Stats() (requests, executions, combined uint64) {
	return d.requests.Load(), d.executions.Load(), d.combined.Load()
}

// Object exposes the underlying ALPS object.
func (d *Dict) Object() *alps.Object { return d.obj }

// Close shuts the dictionary down.
func (d *Dict) Close() error { return d.obj.Close() }
