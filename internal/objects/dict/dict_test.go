package dict

import (
	"fmt"
	"sync"
	"testing"
	"time"

	alps "repro"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{SearchMax: -1}); err == nil {
		t.Fatal("negative SearchMax succeeded")
	}
}

func TestSearchReturnsMeaning(t *testing.T) {
	d, err := New(Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Search("apple")
	if err != nil {
		t.Fatal(err)
	}
	if got != "meaning of apple" {
		t.Fatalf("Search = %q", got)
	}
}

func TestCustomLookup(t *testing.T) {
	d, err := New(Options{
		Combine: true,
		Lookup:  func(w string) string { return "def:" + w },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Search("x")
	if err != nil {
		t.Fatal(err)
	}
	if got != "def:x" {
		t.Fatalf("Search = %q", got)
	}
}

// TestCombiningSavesExecutions is the heart of §2.7: concurrent requests for
// the same word execute one search body; every caller still gets the right
// meaning.
func TestCombiningSavesExecutions(t *testing.T) {
	d, err := New(Options{
		SearchMax:  16,
		SearchCost: 30 * time.Millisecond,
		Combine:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const callers = 10
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := d.Search("same")
			if err != nil {
				t.Errorf("Search: %v", err)
				return
			}
			if got != "meaning of same" {
				t.Errorf("Search = %q", got)
			}
		}()
	}
	wg.Wait()
	requests, executions, combined := d.Stats()
	if requests != callers {
		t.Fatalf("requests = %d, want %d", requests, callers)
	}
	if executions >= callers {
		t.Fatalf("executions = %d; combining saved nothing", executions)
	}
	if combined == 0 {
		t.Fatal("no requests were combined")
	}
	if executions+combined != requests {
		t.Fatalf("executions(%d) + combined(%d) != requests(%d)", executions, combined, requests)
	}
}

func TestDistinctWordsNotCombined(t *testing.T) {
	d, err := New(Options{SearchMax: 8, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			word := fmt.Sprintf("w%d", i)
			got, err := d.Search(word)
			if err != nil || got != "meaning of "+word {
				t.Errorf("Search(%s) = %q, %v", word, got, err)
			}
		}(i)
	}
	wg.Wait()
	_, executions, _ := d.Stats()
	if executions != 8 {
		t.Fatalf("executions = %d, want 8 (no false combining)", executions)
	}
}

// TestEveryCallerGetsItsOwnMeaning interleaves many words with duplication
// and checks no caller ever receives the meaning of a different word —
// combining must key strictly on the queried word.
func TestEveryCallerGetsItsOwnMeaning(t *testing.T) {
	d, err := New(Options{
		SearchMax:  8,
		SearchCost: time.Millisecond,
		Combine:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			word := fmt.Sprintf("w%d", i%7)
			got, err := d.Search(word)
			if err != nil {
				t.Errorf("Search: %v", err)
				return
			}
			if got != "meaning of "+word {
				t.Errorf("Search(%q) = %q: cross-talk", word, got)
			}
		}(i)
	}
	wg.Wait()
	requests, executions, combined := d.Stats()
	if executions+combined != requests {
		t.Fatalf("accounting broken: %d + %d != %d", executions, combined, requests)
	}
}

func TestCombiningOffExecutesEveryRequest(t *testing.T) {
	d, err := New(Options{SearchMax: 16, SearchCost: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const callers = 10
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Search("same"); err != nil {
				t.Errorf("Search: %v", err)
			}
		}()
	}
	wg.Wait()
	_, executions, combined := d.Stats()
	if executions != callers {
		t.Fatalf("executions = %d, want %d with combining off", executions, callers)
	}
	if combined != 0 {
		t.Fatalf("combined = %d with combining off", combined)
	}
}

func TestSequentialRepeatsAreNotCombined(t *testing.T) {
	// Combining applies to *concurrent* duplicates only: once the leader
	// finishes, a later identical request searches again (no caching).
	d, err := New(Options{SearchMax: 4, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		if _, err := d.Search("same"); err != nil {
			t.Fatal(err)
		}
	}
	_, executions, combined := d.Stats()
	if executions != 3 || combined != 0 {
		t.Fatalf("executions = %d, combined = %d; want 3, 0", executions, combined)
	}
}

func TestCloseUnblocksSearchers(t *testing.T) {
	d, err := New(Options{SearchMax: 2, SearchCost: 10 * time.Second, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Search("slow")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Search survived Close with a 10s search cost")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the searcher")
	}
	_ = alps.ErrClosed
}
