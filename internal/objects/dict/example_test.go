package dict_test

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/objects/dict"
)

// Example shows request combining: ten concurrent queries for the same
// word execute far fewer than ten searches.
func Example() {
	d, err := dict.New(dict.Options{
		SearchMax:  16,
		SearchCost: 20 * time.Millisecond,
		Combine:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Search("ubiquitous"); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	requests, executions, combined := d.Stats()
	fmt.Println("requests:", requests)
	fmt.Println("fewer executions than requests:", executions < requests)
	fmt.Println("combined:", combined == requests-executions)
	// Output:
	// requests: 10
	// fewer executions than requests: true
	// combined: true
}
