package alarmclock_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/objects/alarmclock"
)

// Example drives the clock by hand: a sleeper parks until enough ticks
// arrive on the manager's receive guard.
func Example() {
	clock, err := alarmclock.New(alarmclock.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer clock.Close()

	done := make(chan int, 1)
	go func() {
		woke, err := clock.Wakeme(2)
		if err != nil {
			log.Fatal(err)
		}
		done <- woke
	}()
	for clock.Sleeping() == 0 {
		time.Sleep(time.Millisecond) // wait until the sleeper has parked
	}
	for i := 0; i < 2; i++ {
		if err := clock.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("woke at tick", <-done)
	// Output: woke at tick 2
}
