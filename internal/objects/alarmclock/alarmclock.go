// Package alarmclock implements the classic alarm-clock scheduling problem
// as an ALPS object: Wakeme(n) blocks its caller for n clock ticks. It
// demonstrates two mechanisms together: a *receive guard* in the manager's
// loop (ticks arrive as messages on an asynchronous channel, §2.1.2/§2.4)
// and manager-side parking of accepted-but-not-started calls — the same
// pattern the combining dictionary uses, here keyed on time instead of on
// a word.
package alarmclock

import (
	"fmt"
	"sync/atomic"
	"time"

	alps "repro"
	"repro/internal/channel"
)

// Clock is an alarm clock driven by explicit ticks.
type Clock struct {
	obj   *alps.Object
	ticks *channel.Chan

	now    atomic.Int64 // ticks elapsed (monitoring)
	parked atomic.Int64 // callers currently waiting (monitoring)
}

// Config configures the clock.
type Config struct {
	SleeperMax int // hidden Wakeme array size: max simultaneous sleepers (default 16)
	ObjOpts    []alps.Option
}

// New creates a stopped clock; call Tick (or run Ticker) to advance time.
func New(cfg Config) (*Clock, error) {
	if cfg.SleeperMax == 0 {
		cfg.SleeperMax = 16
	}
	if cfg.SleeperMax < 1 {
		return nil, fmt.Errorf("alarmclock: SleeperMax %d", cfg.SleeperMax)
	}
	c := &Clock{ticks: channel.New("ticks", channel.WithArity(0))}

	// The body just reports how long the caller actually slept; the manager
	// rewrites the intercepted parameter to that value before starting.
	wakeme := func(inv *alps.Invocation) error {
		inv.Return(inv.Param(0))
		return nil
	}

	manager := func(m *alps.Mgr) {
		now := int64(0)
		type sleeper struct {
			due int64
			a   *alps.Accepted
		}
		var parked []sleeper

		release := func() {
			kept := parked[:0]
			for _, s := range parked {
				if s.due <= now {
					s.a.Params[0] = int(now) // actual wake tick
					if err := m.Start(s.a); err == nil {
						c.parked.Add(-1)
					}
					continue
				}
				kept = append(kept, s)
			}
			parked = kept
		}

		_ = m.Loop(
			alps.OnAccept("Wakeme", func(a *alps.Accepted) {
				n := a.Params[0].(int)
				if n <= 0 {
					// Wake immediately: start with the current tick.
					a.Params[0] = int(now)
					_ = m.Start(a)
					return
				}
				parked = append(parked, sleeper{due: now + int64(n), a: a})
				c.parked.Add(1)
			}),
			alps.OnAwait("Wakeme", func(aw *alps.Awaited) {
				_ = m.Finish(aw, aw.Results...)
			}),
			alps.OnReceive(c.ticks, func(channel.Message) {
				now++
				c.now.Store(now)
				release()
			}),
		)
	}

	obj, err := alps.New("AlarmClock", append(cfg.ObjOpts,
		alps.WithEntry(alps.EntrySpec{
			Name: "Wakeme", Params: 1, Results: 1, Array: cfg.SleeperMax, Body: wakeme,
		}),
		alps.WithManager(manager, alps.InterceptPR("Wakeme", 1, 1)),
	)...)
	if err != nil {
		return nil, err
	}
	c.obj = obj
	return c, nil
}

// Wakeme blocks until n ticks have elapsed (immediately if n <= 0) and
// returns the tick count at which the caller was woken.
func (c *Clock) Wakeme(n int) (wokeAt int, err error) {
	res, err := c.obj.Call("Wakeme", n)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}

// Tick advances the clock by one tick.
func (c *Clock) Tick() error {
	return c.ticks.Send()
}

// Ticker advances the clock every interval until stop is closed.
func (c *Clock) Ticker(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if c.Tick() != nil {
				return
			}
		case <-stop:
			return
		case <-c.obj.Done():
			return
		}
	}
}

// Now reports the current tick count.
func (c *Clock) Now() int64 { return c.now.Load() }

// Sleeping reports how many callers are currently parked.
func (c *Clock) Sleeping() int64 { return c.parked.Load() }

// Object exposes the underlying ALPS object.
func (c *Clock) Object() *alps.Object { return c.obj }

// Close shuts the clock down; parked sleepers fail with alps.ErrClosed.
func (c *Clock) Close() error {
	c.ticks.Close()
	return c.obj.Close()
}
