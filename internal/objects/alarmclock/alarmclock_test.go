package alarmclock

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	alps "repro"
)

// waitParked blocks until n sleepers are parked in the manager.
func waitParked(t *testing.T, c *Clock, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Sleeping() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d sleepers parked", c.Sleeping(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SleeperMax: -1}); err == nil {
		t.Fatal("negative SleeperMax succeeded")
	}
}

func TestImmediateWake(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	woke, err := c.Wakeme(0)
	if err != nil {
		t.Fatal(err)
	}
	if woke != 0 {
		t.Fatalf("woke at tick %d, clock never ticked", woke)
	}
}

func TestSleeperWaitsForTicks(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan int, 1)
	go func() {
		woke, err := c.Wakeme(3)
		if err != nil {
			t.Errorf("Wakeme: %v", err)
		}
		done <- woke
	}()
	waitParked(t, c, 1)
	// Not woken by 2 ticks.
	for i := 0; i < 2; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case w := <-done:
		t.Fatalf("woke at %d after only 2 ticks", w)
	case <-time.After(50 * time.Millisecond):
	}
	if got := c.Sleeping(); got != 1 {
		t.Fatalf("Sleeping = %d, want 1", got)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-done:
		if w != 3 {
			t.Fatalf("woke at tick %d, want 3", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper not woken by 3rd tick")
	}
}

func TestMultipleSleepersWakeInDueOrder(t *testing.T) {
	c, err := New(Config{SleeperMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for _, n := range []int{5, 1, 3} {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if _, err := c.Wakeme(n); err != nil {
				t.Errorf("Wakeme(%d): %v", n, err)
				return
			}
			mu.Lock()
			order = append(order, n)
			mu.Unlock()
		}(n)
	}
	waitParked(t, c, 3)
	for i := 0; i < 6; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let wakes land between ticks
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("wake order %v, want due order [1 3 5]", order)
	}
	if c.Now() != 6 {
		t.Fatalf("Now = %d, want 6", c.Now())
	}
}

func TestSameDueTickWakeTogether(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	woke := make(chan int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := c.Wakeme(2)
			if err != nil {
				t.Errorf("Wakeme: %v", err)
				return
			}
			woke <- w
		}()
	}
	waitParked(t, c, 3)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(woke)
	for w := range woke {
		if w != 2 {
			t.Fatalf("woke at %d, want 2", w)
		}
	}
}

func TestTickerDrivesClock(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	defer close(stop)
	go c.Ticker(2*time.Millisecond, stop)

	woke, err := c.Wakeme(5)
	if err != nil {
		t.Fatal(err)
	}
	if woke < 5 {
		t.Fatalf("woke at tick %d, want >= 5", woke)
	}
}

func TestCloseFailsParkedSleepers(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Wakeme(100)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, alps.ErrClosed) {
			t.Fatalf("parked sleeper err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked sleeper not released by Close")
	}
}
