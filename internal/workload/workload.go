// Package workload provides deterministic workload generators for the
// experiment harness: seeded PRNG streams, Zipf-distributed word queries for
// the combining dictionary (E3), read/write operation mixes for the
// readers-writers database (E2), and job-size streams for the spooler (E4).
//
// Everything is seeded and reproducible: the same seed always yields the
// same stream, so experiment tables are stable across runs.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer NewRNG for explicit seeds.
type RNG struct {
	state uint64
}

// NewRNG creates a generator with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Skew s = 0 degenerates to the uniform distribution; s
// around 1 gives the heavy duplication that makes request combining
// worthwhile (paper §2.7).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf creates a Zipf sampler over n ranks with skew s >= 0.
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: Zipf over %d ranks", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: negative Zipf skew %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Words returns a deterministic vocabulary of n distinct words.
func Words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word-%05d", i)
	}
	return out
}

// WordStream yields queries over a vocabulary of vocab words with Zipf skew
// s, for the combining-dictionary experiment.
type WordStream struct {
	words []string
	zipf  *Zipf
}

// NewWordStream builds a word query stream.
func NewWordStream(seed uint64, vocab int, skew float64) (*WordStream, error) {
	z, err := NewZipf(NewRNG(seed), vocab, skew)
	if err != nil {
		return nil, err
	}
	return &WordStream{words: Words(vocab), zipf: z}, nil
}

// Next returns the next queried word.
func (w *WordStream) Next() string {
	return w.words[w.zipf.Next()]
}

// Op is a readers-writers operation.
type Op struct {
	Write bool
	Key   int
	Value int
}

// OpMix yields a deterministic stream of read/write operations with the
// given write fraction over keys [0, keys).
type OpMix struct {
	rng       *RNG
	writeFrac float64
	keys      int
	seq       int
}

// NewOpMix builds an operation mix. writeFrac is the probability an
// operation is a write.
func NewOpMix(seed uint64, keys int, writeFrac float64) (*OpMix, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("workload: OpMix over %d keys", keys)
	}
	if writeFrac < 0 || writeFrac > 1 {
		return nil, fmt.Errorf("workload: write fraction %v out of [0,1]", writeFrac)
	}
	return &OpMix{rng: NewRNG(seed), writeFrac: writeFrac, keys: keys}, nil
}

// Next returns the next operation.
func (m *OpMix) Next() Op {
	m.seq++
	return Op{
		Write: m.rng.Bool(m.writeFrac),
		Key:   m.rng.Intn(m.keys),
		Value: m.seq,
	}
}

// JobSizes yields deterministic job sizes in [min, max] for the spooler
// experiment.
type JobSizes struct {
	rng      *RNG
	min, max int
}

// NewJobSizes builds a job size stream.
func NewJobSizes(seed uint64, min, max int) (*JobSizes, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("workload: job size range [%d, %d]", min, max)
	}
	return &JobSizes{rng: NewRNG(seed), min: min, max: max}, nil
}

// Next returns the next job size.
func (j *JobSizes) Next() int {
	return j.min + j.rng.Intn(j.max-j.min+1)
}

// Tracks yields deterministic disk track numbers in [0, cylinders) for the
// disk-head scheduling experiment (E9).
type Tracks struct {
	rng       *RNG
	cylinders int
}

// NewTracks builds a track-number stream.
func NewTracks(seed uint64, cylinders int) (*Tracks, error) {
	if cylinders <= 0 {
		return nil, fmt.Errorf("workload: %d cylinders", cylinders)
	}
	return &Tracks{rng: NewRNG(seed), cylinders: cylinders}, nil
}

// Next returns the next requested track.
func (t *Tracks) Next() int {
	return t.rng.Intn(t.cylinders)
}

// DuplicationRatio reports the fraction of duplicate queries in a stream of
// n draws from the given word stream — a workload property the combining
// experiment reports alongside its results.
func DuplicationRatio(seed uint64, vocab int, skew float64, n int) (float64, error) {
	ws, err := NewWordStream(seed, vocab, skew)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool, vocab)
	dups := 0
	for i := 0; i < n; i++ {
		w := ws.Next()
		if seen[w] {
			dups++
		}
		seen[w] = true
	}
	return float64(dups) / float64(n), nil
}
