package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(3)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(NewRNG(1), 0, 1); err == nil {
		t.Error("Zipf over 0 ranks succeeded")
	}
	if _, err := NewZipf(NewRNG(1), 10, -1); err == nil {
		t.Error("negative skew succeeded")
	}
}

func TestZipfUniformAtSkewZero(t *testing.T) {
	z, err := NewZipf(NewRNG(7), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for rank, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("rank %d frequency %v, want ~0.1 (uniform)", rank, frac)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	z, err := NewZipf(NewRNG(7), 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	top10 := 0
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	if frac := float64(top10) / n; frac < 0.4 {
		t.Fatalf("top-10 ranks got %v of mass at s=1.1, want > 0.4", frac)
	}
}

func TestZipfRanksInRange(t *testing.T) {
	f := func(seedRaw uint32, skewRaw uint8) bool {
		z, err := NewZipf(NewRNG(uint64(seedRaw)), 50, float64(skewRaw%30)/10)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if r := z.Next(); r < 0 || r >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWords(t *testing.T) {
	ws := Words(3)
	if len(ws) != 3 || ws[0] == ws[1] || ws[1] == ws[2] {
		t.Fatalf("Words(3) = %v", ws)
	}
}

func TestWordStreamDeterministic(t *testing.T) {
	a, err := NewWordStream(11, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWordStream(11, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("word streams with same seed diverged")
		}
	}
}

func TestOpMix(t *testing.T) {
	if _, err := NewOpMix(1, 0, 0.5); err == nil {
		t.Error("OpMix over 0 keys succeeded")
	}
	if _, err := NewOpMix(1, 10, 1.5); err == nil {
		t.Error("write fraction > 1 succeeded")
	}
	m, err := NewOpMix(5, 16, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	writes, n := 0, 10000
	seqs := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		op := m.Next()
		if op.Key < 0 || op.Key >= 16 {
			t.Fatalf("key %d out of range", op.Key)
		}
		if seqs[op.Value] {
			t.Fatalf("sequence value %d repeated", op.Value)
		}
		seqs[op.Value] = true
		if op.Write {
			writes++
		}
	}
	if frac := float64(writes) / float64(n); math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("write fraction %v, want ~0.1", frac)
	}
}

func TestJobSizes(t *testing.T) {
	if _, err := NewJobSizes(1, 0, 5); err == nil {
		t.Error("min 0 succeeded")
	}
	if _, err := NewJobSizes(1, 5, 4); err == nil {
		t.Error("max < min succeeded")
	}
	j, err := NewJobSizes(9, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		s := j.Next()
		if s < 2 || s > 6 {
			t.Fatalf("job size %d out of [2,6]", s)
		}
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d distinct sizes, want 5", len(seen))
	}
}

func TestTracks(t *testing.T) {
	if _, err := NewTracks(1, 0); err == nil {
		t.Error("0 cylinders succeeded")
	}
	tr, err := NewTracks(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := tr.Next(); v < 0 || v >= 200 {
			t.Fatalf("track %d out of range", v)
		}
	}
}

func TestDuplicationRatio(t *testing.T) {
	// Uniform over a huge vocabulary: almost no duplicates.
	low, err := DuplicationRatio(1, 100000, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if low > 0.05 {
		t.Fatalf("uniform/huge-vocab duplication = %v, want ~0", low)
	}
	// Skewed over a small vocabulary: mostly duplicates.
	high, err := DuplicationRatio(1, 50, 1.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if high < 0.8 {
		t.Fatalf("skewed/small-vocab duplication = %v, want > 0.8", high)
	}
	if _, err := DuplicationRatio(1, 0, 1, 10); err == nil {
		t.Error("DuplicationRatio with 0 vocab succeeded")
	}
}
