// Package testutil holds the deadline-derived wait helpers the soak,
// chaos and e2e suites share. Deriving polling budgets from the test
// binary's own -timeout (t.Deadline) instead of fixed wall-clock sleeps
// keeps slow machines (race-instrumented, loaded CI) honest: waits return
// as soon as the event happens and only ever fail when the event
// genuinely never happened (docs/TESTING.md).
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitBudget returns how long a polling wait may run: until just before
// the test binary's own deadline (-timeout), or 30s when none is set.
func WaitBudget(t testing.TB) time.Time {
	t.Helper()
	type deadliner interface{ Deadline() (time.Time, bool) }
	if d, ok := t.(deadliner); ok {
		if deadline, ok := d.Deadline(); ok {
			// Leave a grace period so a failed wait reports through t.Fatalf
			// with diagnostics rather than the panic of a timed-out binary.
			return deadline.Add(-2 * time.Second)
		}
	}
	return time.Now().Add(30 * time.Second)
}

// WaitUntil polls cond every millisecond until it holds, failing the test
// with desc if the budget runs out.
func WaitUntil(t testing.TB, desc string, cond func() bool) {
	t.Helper()
	deadline := WaitBudget(t)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

// SettleGoroutines waits for the goroutine count to return to (close to)
// its pre-test level after shutdown, GC-ing between polls; on timeout it
// fails with a full stack dump. Runtime-internal goroutines may linger, so
// a small tolerance is allowed.
func SettleGoroutines(t testing.TB, before int) {
	t.Helper()
	deadline := WaitBudget(t)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<16)
			n := runtime.Stack(stack, true)
			t.Fatalf("goroutines: before %d, after %d — leak?\n%s", before, after, stack[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
