package replica

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/simnet"
	"repro/internal/wal"
)

// kvObj is the replicated guinea pig: a keyed counter that also counts
// its own executions, so replay-vs-re-execute — the heart of
// exactly-once — is directly observable from the outside.
type kvObj struct {
	mu    sync.Mutex
	data  map[string]uint64
	execs int
}

func newKV() *kvObj { return &kvObj{data: make(map[string]uint64)} }

func (o *kvObj) CallCtx(_ context.Context, entry string, params ...any) ([]any, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch entry {
	case "Inc":
		key, _ := params[0].(string)
		o.execs++
		o.data[key]++
		return []any{o.data[key]}, nil
	case "Get":
		key, _ := params[0].(string)
		return []any{o.data[key]}, nil
	default:
		return nil, fmt.Errorf("kv: unknown entry %q", entry)
	}
}

func (o *kvObj) value(key string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.data[key]
}

func (o *kvObj) executions() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.execs
}

func (o *kvObj) snapshot() ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o.data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (o *kvObj) restore(b []byte) error {
	data := make(map[string]uint64)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&data); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.data = data
	return nil
}

// member bundles one group member's moving parts for a test.
type member struct {
	id   string
	obj  *kvObj
	node *rpc.Node
	rep  *Replica
}

// crash simulates kill -9: sever the member's network presence, then
// stop its goroutines. Nothing is flushed; whatever the member promised
// before the crash lives only in its wal.Store (if it had one).
func (m *member) crash(nw *simnet.Network) {
	nw.Kill(m.id)
	m.rep.Close()
	m.node.Close()
}

type groupOpts struct {
	store    *wal.Store
	thresh   int // SnapshotThreshold; 0 = default
	metrics  *rpc.Metrics
	readOnly func(string) bool
}

func startMember(t *testing.T, nw *simnet.Network, id string, peers map[string]string, seed uint64, o groupOpts) *member {
	t.Helper()
	obj := newKV()
	rep, err := New(Config{
		ID:    id,
		Group: "KV",
		Peers: peers,
		Dial: func(addr string) (net.Conn, error) {
			return nw.DialFrom(id, addr)
		},
		Store:             o.store,
		ElectionTimeout:   60 * time.Millisecond,
		Seed:              seed,
		SnapshotThreshold: o.thresh,
		Snapshot:          obj.snapshot,
		Restore:           obj.restore,
		Metrics:           o.metrics,
		ReadOnly:          o.readOnly,
	}, obj)
	if err != nil {
		t.Fatal(err)
	}
	node := rpc.NewNode(id)
	if err := rep.Publish(node); err != nil {
		t.Fatal(err)
	}
	lis, err := nw.Listen(id)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()
	m := &member{id: id, obj: obj, node: node, rep: rep}
	t.Cleanup(func() {
		m.rep.Close()
		m.node.Close()
	})
	return m
}

func startGroup(t *testing.T, nw *simnet.Network, ids []string, seed uint64, o groupOpts) []*member {
	t.Helper()
	peers := make(map[string]string, len(ids))
	for _, id := range ids {
		peers[id] = id
	}
	members := make([]*member, 0, len(ids))
	for _, id := range ids {
		members = append(members, startMember(t, nw, id, peers, seed, o))
	}
	return members
}

// groupClient is a retrying at-most-once client rotating across the
// group's addresses — the DialMulti pattern, with simnet dials injected.
func groupClient(t *testing.T, nw *simnet.Network, clientID string, addrs []string) *rpc.Remote {
	t.Helper()
	var next atomic.Uint64
	redial := func() (net.Conn, error) {
		var lastErr error
		for range addrs {
			addr := addrs[int(next.Add(1)-1)%len(addrs)]
			conn, err := nw.DialFrom(clientID, addr)
			if err == nil {
				return conn, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("group client: all addresses down: %w", lastErr)
	}
	conn, err := redial()
	if err != nil {
		t.Fatal(err)
	}
	rem := rpc.DialConnWith(conn, rpc.DialOptions{
		ClientID: clientID,
		Redial:   redial,
		Retry: rpc.RetryPolicy{
			Max:            200,
			Backoff:        time.Millisecond,
			MaxBackoff:     25 * time.Millisecond,
			AttemptTimeout: time.Second,
		},
	})
	t.Cleanup(rem.Close)
	return rem
}

func waitLeader(t *testing.T, members []*member, patience time.Duration) *member {
	t.Helper()
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) {
		for _, m := range members {
			if role, _, _ := m.rep.Status(); role == Leader {
				return m
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return nil
}

func waitValue(t *testing.T, members []*member, key string, want uint64, patience time.Duration) {
	t.Helper()
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) {
		all := true
		for _, m := range members {
			if m.obj.value(key) != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, m := range members {
		t.Logf("%s: %s=%d applied=%d", m.id, key, m.obj.value(key), m.rep.Applied())
	}
	t.Fatalf("group did not converge on %s=%d", key, want)
}

// TestElectCommitApply: the happy path. Three members elect a leader,
// a client's calls commit through the replicated log, every member
// applies the same sequence, and each call executes exactly once.
func TestElectCommitApply(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 1})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 42, groupOpts{})
	waitLeader(t, members, 2*time.Second)

	cli := groupClient(t, nw, "cli-1", []string{"A", "B", "C"})
	for i := uint64(1); i <= 20; i++ {
		res, err := cli.Call("KV", "Inc", "k")
		if err != nil {
			t.Fatalf("Inc %d: %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d — a call was lost or double-applied", i, got)
		}
	}
	waitValue(t, members, "k", 20, 2*time.Second)
	for _, m := range members {
		if n := m.obj.executions(); n != 20 {
			t.Errorf("%s executed %d times, want exactly 20", m.id, n)
		}
	}
}

// TestLeaderKillFailoverExactlyOnce is the issue's acceptance scenario:
// kill the leader of a three-member group mid-traffic. The client keeps
// calling through the failover with the same retry identity; every call
// must land exactly once — the returned counter values stay gapless and
// duplicate-free — and the survivors converge.
func TestLeaderKillFailoverExactlyOnce(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 2})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 7, groupOpts{})
	lead := waitLeader(t, members, 2*time.Second)

	cli := groupClient(t, nw, "cli-fo", []string{"A", "B", "C"})
	for i := uint64(1); i <= 10; i++ {
		res, err := cli.Call("KV", "Inc", "k")
		if err != nil {
			t.Fatalf("Inc %d (pre-kill): %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d before the kill", i, got)
		}
	}

	lead.crash(nw)
	var live []*member
	for _, m := range members {
		if m != lead {
			live = append(live, m)
		}
	}

	for i := uint64(11); i <= 30; i++ {
		res, err := cli.Call("KV", "Inc", "k")
		if err != nil {
			t.Fatalf("Inc %d (through failover): %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d across the failover — exactly-once violated", i, got)
		}
	}
	waitValue(t, live, "k", 30, 2*time.Second)
	newLead := waitLeader(t, live, time.Second)
	if newLead == lead {
		t.Fatal("dead leader still leads")
	}
}

// TestSessionReplayAcrossLeadershipChange is the satellite's table: a
// (client, seq) already committed under the old leader, retried against
// the NEW leader after a failover, must replay its recorded response —
// never re-execute — while fresh identities execute normally.
func TestSessionReplayAcrossLeadershipChange(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 3})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 11, groupOpts{})
	lead := waitLeader(t, members, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	res, err := lead.rep.CallSession(ctx, "cli", 1, "Inc", []any{"k"})
	if err != nil {
		t.Fatalf("seed call: %v", err)
	}
	if got := res[0].(uint64); got != 1 {
		t.Fatalf("seed call returned %d, want 1", got)
	}
	waitValue(t, members, "k", 1, 2*time.Second)

	lead.crash(nw)
	var live []*member
	for _, m := range members {
		if m != lead {
			live = append(live, m)
		}
	}
	newLead := waitLeader(t, live, 2*time.Second)

	cases := []struct {
		name     string
		client   string
		seq      uint64
		wantVal  uint64
		executes bool
	}{
		{"retried seq replays, not re-executes", "cli", 1, 1, false},
		{"fresh seq from the same client executes", "cli", 2, 2, true},
		{"same seq from a different client executes", "cli2", 1, 3, true},
		{"that call retried also replays", "cli2", 1, 3, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			before := newLead.obj.executions()
			res, err := newLead.rep.CallSession(ctx, c.client, c.seq, "Inc", []any{"k"})
			if err != nil {
				t.Fatalf("CallSession: %v", err)
			}
			if got := res[0].(uint64); got != c.wantVal {
				t.Fatalf("returned %d, want %d", got, c.wantVal)
			}
			wantDelta := 0
			if c.executes {
				wantDelta = 1
			}
			if delta := newLead.obj.executions() - before; delta != wantDelta {
				t.Fatalf("entry body ran %d times, want %d", delta, wantDelta)
			}
		})
	}
}

// TestExactlyOnceUnderConnChaos: the chaos variant — every write has a
// 2% chance of severing its connection, the client retries through the
// carnage, and the counter must still count every call exactly once.
func TestExactlyOnceUnderConnChaos(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 77, KillProb: 0.02})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 5, groupOpts{})
	waitLeader(t, members, 2*time.Second)

	cli := groupClient(t, nw, "cli-chaos", []string{"A", "B", "C"})
	const calls = 40
	for i := uint64(1); i <= calls; i++ {
		res, err := cli.Call("KV", "Inc", "k")
		if err != nil {
			t.Fatalf("Inc %d under chaos: %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d under chaos — exactly-once violated", i, got)
		}
	}
	waitValue(t, members, "k", calls, 5*time.Second)
	kills, _, _ := nw.Stats()
	t.Logf("survived %d connection kills", kills)
}

// TestRejoinCatchesUpViaSnapshot: a follower crashes, the group commits
// past the leader's compaction threshold, and the restarted member must
// catch up via InstallSnapshot — observable because its object executes
// only the post-snapshot suffix, not the full history.
func TestRejoinCatchesUpViaSnapshot(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 4})
	ids := []string{"A", "B", "C"}
	members := startGroup(t, nw, ids, 23, groupOpts{thresh: 8})
	lead := waitLeader(t, members, 2*time.Second)

	var victim *member
	for _, m := range members {
		if m != lead {
			victim = m
			break
		}
	}
	victim.crash(nw)

	cli := groupClient(t, nw, "cli-rejoin", []string{"A", "B", "C"})
	const calls = 50
	for i := uint64(1); i <= calls; i++ {
		res, err := cli.Call("KV", "Inc", "k")
		if err != nil {
			t.Fatalf("Inc %d with a member down: %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d", i, got)
		}
	}
	var live []*member
	for _, m := range members {
		if m != victim {
			live = append(live, m)
		}
	}
	waitValue(t, live, "k", calls, 2*time.Second)

	peers := map[string]string{"A": "A", "B": "B", "C": "C"}
	rejoined := startMember(t, nw, victim.id, peers, 23, groupOpts{thresh: 8})
	waitValue(t, []*member{rejoined}, "k", calls, 5*time.Second)
	if n := rejoined.obj.executions(); n >= calls {
		t.Errorf("rejoined member executed %d entries — caught up by full replay, want snapshot install", n)
	} else {
		t.Logf("rejoined member executed only %d/%d entries (snapshot carried the rest)", n, calls)
	}
}

// TestDurableRestartReplaysPromises: a member with a wal.Store is
// crashed and restarted over the same directory. Its consensus log and
// session table must survive: committed calls re-apply to rebuild state,
// and a client's retried (client, seq) from before the crash replays its
// recorded response instead of re-executing.
func TestDurableRestartReplaysPromises(t *testing.T) {
	dir := t.TempDir()
	nw := simnet.New(simnet.Config{Seed: 6})
	peers := map[string]string{"solo": "solo"}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	store, err := wal.OpenStore(dir, wal.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := startMember(t, nw, "solo", peers, 9, groupOpts{store: store})
	waitLeader(t, []*member{m}, 2*time.Second)
	for i := uint64(1); i <= 5; i++ {
		res, err := m.rep.CallSession(ctx, "cli", i, "Inc", []any{"k"})
		if err != nil {
			t.Fatalf("Inc %d: %v", i, err)
		}
		if got := res[0].(uint64); got != i {
			t.Fatalf("Inc %d returned %d", i, got)
		}
	}
	m.crash(nw)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := wal.OpenStore(dir, wal.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store2.Close() })
	m2 := startMember(t, nw, "solo", peers, 9, groupOpts{store: store2})
	waitLeader(t, []*member{m2}, 2*time.Second)
	waitValue(t, []*member{m2}, "k", 5, 2*time.Second)

	before := m2.obj.executions()
	res, err := m2.rep.CallSession(ctx, "cli", 3, "Inc", []any{"k"})
	if err != nil {
		t.Fatalf("retried pre-crash call: %v", err)
	}
	if got := res[0].(uint64); got != 3 {
		t.Fatalf("retried pre-crash call returned %d, want the recorded 3", got)
	}
	if m2.obj.executions() != before {
		t.Fatal("retried pre-crash call re-executed after restart")
	}
	if v := m2.obj.value("k"); v != 5 {
		t.Fatalf("state corrupted by replay: k=%d, want 5", v)
	}
}

// TestFollowerRejectsAndHintsLeader: a direct call on a follower fails
// with the retryable not-leader error so clients bounce instead of
// blocking — and the error names the leader when the follower knows it.
func TestFollowerRejectsAndHintsLeader(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 8})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 3, groupOpts{})
	lead := waitLeader(t, members, 2*time.Second)

	// Let heartbeats spread the leader's identity.
	cli := groupClient(t, nw, "cli-warm", []string{"A", "B", "C"})
	if _, err := cli.Call("KV", "Inc", "k"); err != nil {
		t.Fatal(err)
	}
	waitValue(t, members, "k", 1, 2*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, m := range members {
		if m == lead {
			continue
		}
		_, err := m.rep.CallSession(ctx, "x", 1, "Inc", []any{"k"})
		if err == nil {
			t.Fatalf("%s (follower) accepted a call", m.id)
		}
	}
}
