package replica

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
	"repro/internal/wire"
)

// run is the member's timer loop: as follower/candidate it watches for
// election timeout, as leader it drives heartbeats. One ticker at the
// heartbeat interval gives both enough resolution.
func (r *Replica) run() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		r.mu.Lock()
		switch r.role {
		case Leader:
			r.mu.Unlock()
			r.kickPeers()
		case Follower, Candidate:
			if time.Now().After(r.electionDeadline) {
				r.startElectionLocked() // unlocks
			} else {
				r.mu.Unlock()
			}
		}
	}
}

// resetElectionDeadline draws the next timeout from the member's seeded
// stream: [T, 2T) so two members rarely fire together, reproducibly so
// the failover schedule of a seeded test replays exactly.
func (r *Replica) resetElectionDeadline() {
	base := r.cfg.ElectionTimeout
	d := base + time.Duration(r.rng.Intn(int(base)))
	r.electionDeadline = time.Now().Add(d)
}

// startElectionLocked begins a candidacy: bump the term, vote for self,
// persist both before soliciting, then collect votes concurrently.
// Called with r.mu held; returns with it released.
func (r *Replica) startElectionLocked() {
	r.role = Candidate
	r.term++
	r.votedFor = r.cfg.ID
	r.leaderID = ""
	r.failReadsLocked(wire.ErrNotLeader)
	term := r.term
	lastIdx := r.lastIndex()
	lastTerm, _ := r.termAt(lastIdx)
	r.resetElectionDeadline()
	lsn := r.persistStateLocked()
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("election t%d: persist: %v", term, err)
		return
	}
	r.logf("election t%d: soliciting votes (last %d/t%d)", term, lastIdx, lastTerm)

	votes := make(chan bool, len(r.peers))
	for _, p := range r.peers {
		go func(p *peer) {
			granted, peerTerm, err := p.requestVote(term, r.cfg.ID, lastIdx, lastTerm)
			if err != nil {
				votes <- false
				return
			}
			if peerTerm > term {
				r.observeTerm(peerTerm)
				votes <- false
				return
			}
			votes <- granted
		}(p)
	}
	need := (len(r.peers)+1)/2 + 1 // quorum of the full group
	got := 1                       // self
	if got >= need {
		// Single-member group: the self vote is already a quorum.
		r.becomeLeader(term)
		return
	}
	go func() {
		for range r.peers {
			if <-votes {
				got++
			}
			if got >= need {
				r.becomeLeader(term)
				return
			}
		}
	}()
}

// becomeLeader transitions if the member is still the candidate of term.
// The fresh leader appends a no-op barrier entry: Raft never commits a
// prior-term entry by counting replicas, so the barrier is what lets the
// new leader commit everything it inherited — and what guarantees parked
// waiters resolve after a failover instead of hanging on an uncommittable
// tail. The barrier index also gates the ReadIndex fast path: reads
// bounce until it commits.
func (r *Replica) becomeLeader(term uint64) {
	r.mu.Lock()
	if r.closed || r.role != Candidate || r.term != term {
		r.mu.Unlock()
		return
	}
	r.role = Leader
	r.leaderID = r.cfg.ID
	next := r.lastIndex() + 1
	for _, p := range r.peers {
		p.mu.Lock()
		p.nextIndex = next
		p.matchIndex = 0
		p.epoch++ // acks from frames of an older leadership are stale
		p.sentCommit = 0
		p.sentConfirm = p.confirmed
		p.lastSent = time.Time{} // heartbeat immediately
		p.mu.Unlock()
	}
	barrier := entry{Term: term}
	idx := r.appendLocalLocked(barrier)
	r.barrierIdx = idx
	lsn := r.persistAppendLocked(idx, barrier)
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("barrier persist: %v", err)
	}
	r.logf("leader of t%d (barrier at %d)", term, idx)
	r.kickPeers()
	r.maybeAdvanceCommit()
}

// observeTerm steps down if t is newer than ours — the single rule that
// keeps stale leaders from splitting the group's brain.
func (r *Replica) observeTerm(t uint64) {
	r.mu.Lock()
	lsn := uint64(0)
	if t > r.term {
		r.term = t
		r.votedFor = ""
		r.role = Follower
		r.leaderID = ""
		r.failReadsLocked(wire.ErrNotLeader)
		r.resetElectionDeadline()
		lsn = r.persistStateLocked()
	}
	r.mu.Unlock()
	if lsn != 0 {
		_ = r.waitSynced(lsn)
	}
}

// kickPeers nudges every replication pump: new entries to ship, a commit
// index to advertise, a read round to confirm, or just a heartbeat due.
func (r *Replica) kickPeers() {
	for _, p := range r.peers {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// maybeAdvanceCommit recomputes the quorum match point. Only entries of
// the CURRENT term commit by counting (the barrier carries the rest).
// Followers learn the new frontier from the commit index piggybacked on
// the next entry frame or heartbeat — an advance wakes only the local
// apply loop.
func (r *Replica) maybeAdvanceCommit() {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	matches := make([]uint64, 0, len(r.peers)+1)
	matches = append(matches, r.lastIndex())
	for _, p := range r.peers {
		p.mu.Lock()
		matches = append(matches, p.matchIndex)
		p.mu.Unlock()
	}
	// quorum-th highest match index is replicated on a majority.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] > matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	n := matches[(len(matches)-1)/2]
	if n > r.commitIndex {
		if t, ok := r.termAt(n); ok && t == r.term {
			r.commitIndex = n
			r.applyCond.Signal()
		}
	}
	r.mu.Unlock()
}

// --- peer: one replication target ---

// peer is the leader-side view of one other member: its lazily-dialed
// Remote, replication cursors, and the pipeline window of AppendEntries
// frames currently in flight to it.
type peer struct {
	r    *Replica
	id   string
	addr string
	kick chan struct{}

	mu         sync.Mutex
	rem        *rpc.Remote
	nextIndex  uint64
	matchIndex uint64

	// Pipeline state. inflight counts outstanding frames (bounded by
	// Config.PipelineWindow); epoch is bumped whenever a frame fails or
	// conflicts, so acks for frames sent under an older view cannot
	// double-apply a rewind. nextIndex advances optimistically at send
	// time and is rewound by the epoch-guarded nack path — matchIndex
	// only ever moves forward, on hard evidence, so commit counting stays
	// safe under reordered acks.
	inflight    int
	epoch       uint64
	sentCommit  uint64    // commit index last advertised
	confirmed   uint64    // highest read-confirmation round this peer acked
	sentConfirm uint64    // highest confirmation round shipped
	lastSent    time.Time // heartbeat pacing
}

func newPeer(r *Replica, id, addr string) *peer {
	return &peer{r: r, id: id, addr: addr, kick: make(chan struct{}, 1), nextIndex: 1}
}

// ensure returns a live Remote, dialing on demand — a peer that is down
// at startup (or restarting after a crash) becomes reachable the moment
// its endpoint listens again.
func (p *peer) ensure() (*rpc.Remote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rem != nil {
		return p.rem, nil
	}
	conn, err := p.r.cfg.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	addr := p.addr
	p.rem = rpc.DialConnWith(conn, rpc.DialOptions{
		ClientID: p.r.cfg.ID + "->" + p.id,
		Redial:   func() (net.Conn, error) { return p.r.cfg.Dial(addr) },
	})
	return p.rem, nil
}

func (p *peer) close() {
	p.mu.Lock()
	rem := p.rem
	p.mu.Unlock()
	if rem != nil {
		rem.Close()
	}
}

// call issues one consensus RPC, bounded by the election timeout — a
// wedged peer must not pin a pipeline slot past the point where the
// group would re-elect anyway.
func (p *peer) call(entry string, params ...any) ([]any, error) {
	rem, err := p.ensure()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.r.cfg.ElectionTimeout)
	defer cancel()
	return rem.CallWith(ctx, rpc.CallOptions{}, ControlName(p.r.cfg.Group), entry, params...)
}

func (p *peer) requestVote(term uint64, candidate string, lastIdx, lastTerm uint64) (granted bool, peerTerm uint64, err error) {
	res, err := p.call("RequestVote", term, candidate, lastIdx, lastTerm)
	if err != nil {
		return false, 0, err
	}
	if len(res) != 2 {
		return false, 0, fmt.Errorf("replica: RequestVote: bad reply arity %d", len(res))
	}
	t, ok1 := res[0].(uint64)
	g, ok2 := res[1].(bool)
	if !ok1 || !ok2 {
		return false, 0, fmt.Errorf("replica: RequestVote: bad reply types")
	}
	return g, t, nil
}

// maxBatch bounds entries per AppendEntries frame: catch-up streams in
// chunks instead of one giant frame.
const maxBatch = 64

// loop drives this peer's pipeline; kicked on appends, commit changes,
// read rounds and the heartbeat tick.
func (p *peer) loop() {
	r := p.r
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-p.kick:
		}
		p.pump()
	}
}

// pump tops up the pipeline: while we lead and the window has room, ship
// the next AppendEntries frame (or a lightweight Heartbeat when only a
// read round needs confirming). Each frame's ack is handled on its own
// goroutine, so follower RTT, leader work and frame encode overlap — the
// stop-and-wait replicateOnce of PR 8, unrolled N deep. Safe to call from
// multiple goroutines: the r.mu+p.mu hold reserves each frame's log range
// before anything is sent.
func (p *peer) pump() {
	r := p.r
	for {
		r.mu.Lock()
		if r.closed || r.role != Leader {
			r.mu.Unlock()
			return
		}
		term := r.term
		commit := r.commitIndex
		confirm := r.confirmSeq
		pendingReads := len(r.reads) > 0

		p.mu.Lock()
		if p.inflight >= r.cfg.PipelineWindow {
			p.mu.Unlock()
			r.mu.Unlock()
			return
		}
		next := p.nextIndex

		if next <= r.snapIndex && r.snapBlob != nil {
			// The entries this peer needs are compacted away: ship the
			// snapshot — alone, the pipe drained, so no log frame can race
			// the install.
			if p.inflight > 0 {
				p.mu.Unlock()
				r.mu.Unlock()
				return
			}
			blob := r.snapBlob
			snapIdx, snapTerm := r.snapIndex, r.snapTerm
			epoch := p.epoch
			p.inflight++
			p.lastSent = time.Now()
			p.mu.Unlock()
			r.mu.Unlock()
			go p.sendSnapshot(term, snapIdx, snapTerm, blob, epoch)
			return
		}

		prev := next - 1
		prevTerm, ok := r.termAt(prev)
		if !ok {
			// prev is below our snapshot floor and we have no blob to ship
			// (compaction disabled): restart the peer from the floor.
			p.nextIndex = r.snapIndex + 1
			p.mu.Unlock()
			r.mu.Unlock()
			continue
		}
		last := r.lastIndex()
		n := int(last - prev)
		if n > maxBatch {
			n = maxBatch
		}
		// Commit advances are NOT a send trigger on their own: the new
		// frontier piggybacks on the next entry frame or heartbeat, so a
		// committed op costs the group one frame per peer, not two.
		// Followers trail the leader's commit by at most one heartbeat,
		// which only delays their local applies, never the client reply.
		heartbeatDue := time.Since(p.lastSent) >= r.cfg.Heartbeat
		needConfirm := pendingReads && confirm > p.sentConfirm
		if n == 0 && !heartbeatDue {
			if !needConfirm {
				p.mu.Unlock()
				r.mu.Unlock()
				return
			}
			// Only a read round to confirm: a Heartbeat frame skips the
			// log-consistency machinery entirely.
			epoch := p.epoch
			p.inflight++
			depth := p.inflight
			p.sentConfirm = confirm
			p.lastSent = time.Now()
			p.mu.Unlock()
			r.mu.Unlock()
			if m := r.cfg.Metrics; m != nil {
				m.ReplWindow.Observe(depth)
			}
			go p.sendHeartbeat(term, confirm, epoch)
			continue
		}

		f := getAppendFrame()
		for i := 0; i < n; i++ {
			e, _ := r.entryAt(prev + 1 + uint64(i))
			f.add(e)
		}
		epoch := p.epoch
		p.nextIndex = prev + uint64(n) + 1 // optimistic; the nack path rewinds
		p.inflight++
		depth := p.inflight
		if commit > p.sentCommit {
			p.sentCommit = commit
		}
		if confirm > p.sentConfirm {
			p.sentConfirm = confirm
		}
		p.lastSent = time.Now()
		p.mu.Unlock()
		r.mu.Unlock()
		if m := r.cfg.Metrics; m != nil {
			m.ReplBatch.Observe(n)
			m.ReplWindow.Observe(depth)
		}
		go p.sendAppend(term, prev, prevTerm, commit, confirm, f, epoch)
	}
}

// sendAppend ships one AppendEntries frame and handles its ack. A success
// advances matchIndex (monotonic — valid whatever order acks land in) and
// counts toward any read round at or below confirm; a conflict or
// transport failure rewinds nextIndex under the epoch guard, so only the
// FIRST failure of a burst rewinds and stale acks are inert.
func (p *peer) sendAppend(term, prev, prevTerm, commit, confirm uint64, f *appendFrame, epoch uint64) {
	r := p.r
	res, err := p.call("AppendEntries", term, r.cfg.ID, prev, prevTerm, commit, f.vals)
	n := uint64(len(f.vals))
	putAppendFrame(f)
	if err != nil {
		p.nack(epoch, prev+1)
		return
	}
	peerTerm, success, conflict, derr := decodeAppendReply(res)
	if derr != nil {
		p.nack(epoch, prev+1)
		return
	}
	if peerTerm > term {
		p.finish()
		r.observeTerm(peerTerm)
		return
	}
	if !success {
		// Log mismatch: back off to the follower's hint. The hint applies
		// to THIS frame's prev — with a clamped floor at matchIndex, which
		// is hard evidence whatever this reply says.
		p.mu.Lock()
		p.inflight--
		if p.epoch == epoch {
			p.epoch++
			ni := conflict
			if ni == 0 || ni > prev {
				ni = prev
			}
			if ni <= p.matchIndex {
				ni = p.matchIndex + 1
			}
			if ni < 1 {
				ni = 1
			}
			p.nextIndex = ni
			p.sentCommit = 0
			p.sentConfirm = p.confirmed
		}
		p.mu.Unlock()
		p.pump()
		return
	}
	p.mu.Lock()
	p.inflight--
	match := prev + n
	if match > p.matchIndex {
		p.matchIndex = match
	}
	if match+1 > p.nextIndex {
		p.nextIndex = match + 1
	}
	if confirm > p.confirmed {
		p.confirmed = confirm
	}
	p.mu.Unlock()
	r.maybeAdvanceCommit()
	r.advanceReads()
	p.pump()
}

// sendHeartbeat ships a pure leadership/read-confirmation probe: params
// [term, leaderID, confirm], reply [term, ok, confirm]. The echoed round
// is what advanceReads counts toward the read quorum.
func (p *peer) sendHeartbeat(term, confirm, epoch uint64) {
	r := p.r
	res, err := p.call("Heartbeat", term, r.cfg.ID, confirm)
	if err == nil {
		var peerTerm, echoed uint64
		var ok bool
		peerTerm, ok, echoed, err = decodeHeartbeatReply(res)
		if err == nil {
			if peerTerm > term {
				p.finish()
				r.observeTerm(peerTerm)
				return
			}
			p.mu.Lock()
			p.inflight--
			if ok && echoed > p.confirmed {
				p.confirmed = echoed
			}
			p.mu.Unlock()
			if ok {
				r.advanceReads()
			}
			p.pump()
			return
		}
	}
	p.mu.Lock()
	p.inflight--
	if p.epoch == epoch {
		p.epoch++
		p.sentConfirm = p.confirmed // retry the round on the next kick
	}
	p.mu.Unlock()
}

// sendSnapshot ships the compaction snapshot and resumes the log from its
// floor.
func (p *peer) sendSnapshot(term, snapIdx, snapTerm uint64, blob []byte, epoch uint64) {
	r := p.r
	res, err := p.call("InstallSnapshot", term, r.cfg.ID, snapIdx, snapTerm, blob)
	if err != nil {
		p.finish()
		return
	}
	if len(res) == 1 {
		if t, ok := res[0].(uint64); ok && t > term {
			p.finish()
			r.observeTerm(t)
			return
		}
	}
	p.mu.Lock()
	p.inflight--
	if p.matchIndex < snapIdx {
		p.matchIndex = snapIdx
	}
	if p.epoch == epoch && p.nextIndex < snapIdx+1 {
		p.nextIndex = snapIdx + 1
	}
	p.mu.Unlock()
	r.maybeAdvanceCommit()
	p.pump()
}

// nack handles a failed or undecodable AppendEntries exchange: free the
// window slot and, if no later failure already did, rewind nextIndex to
// resend from this frame's range.
func (p *peer) nack(epoch, rewindTo uint64) {
	p.mu.Lock()
	p.inflight--
	if p.epoch == epoch {
		p.epoch++
		if rewindTo < p.nextIndex {
			p.nextIndex = rewindTo
		}
		if p.nextIndex <= p.matchIndex {
			p.nextIndex = p.matchIndex + 1
		}
		p.sentCommit = 0
		p.sentConfirm = p.confirmed
	}
	p.mu.Unlock()
}

// finish frees a window slot with no cursor changes.
func (p *peer) finish() {
	p.mu.Lock()
	p.inflight--
	p.mu.Unlock()
}

func decodeAppendReply(res []any) (term uint64, success bool, conflict uint64, err error) {
	if len(res) != 3 {
		return 0, false, 0, fmt.Errorf("replica: AppendEntries: bad reply arity %d", len(res))
	}
	t, ok1 := res[0].(uint64)
	s, ok2 := res[1].(bool)
	c, ok3 := res[2].(uint64)
	if !ok1 || !ok2 || !ok3 {
		return 0, false, 0, fmt.Errorf("replica: AppendEntries: bad reply types")
	}
	return t, s, c, nil
}

func decodeHeartbeatReply(res []any) (term uint64, ok bool, confirm uint64, err error) {
	if len(res) != 3 {
		return 0, false, 0, fmt.Errorf("replica: Heartbeat: bad reply arity %d", len(res))
	}
	t, ok1 := res[0].(uint64)
	o, ok2 := res[1].(bool)
	c, ok3 := res[2].(uint64)
	if !ok1 || !ok2 || !ok3 {
		return 0, false, 0, fmt.Errorf("replica: Heartbeat: bad reply types")
	}
	return t, o, c, nil
}

// --- pooled AppendEntries encode scratch ---

// appendFrame is the reusable encode scratch for one AppendEntries batch:
// the []any the wire codec carries plus the per-entry 5-slot cells it
// points into. Reuse is safe the moment CallWith returns — the transport
// encodes frames synchronously in the sender's goroutine (link.send)
// before queueing bytes, so nothing references the scratch afterwards.
// This is most of the fix for PR 8's 140 allocs/op: the per-round batch
// and cell allocations become pool hits.
type appendFrame struct {
	vals  []any
	cells [][]any
}

var appendFramePool = sync.Pool{New: func() any { return &appendFrame{} }}

func getAppendFrame() *appendFrame {
	return appendFramePool.Get().(*appendFrame)
}

func (f *appendFrame) add(e entry) {
	params := e.Params
	if params == nil {
		params = []any{}
	}
	i := len(f.vals)
	if i < len(f.cells) {
		f.cells[i] = append(f.cells[i][:0], e.Term, e.Entry, e.Client, e.Seq, params)
	} else {
		f.cells = append(f.cells, []any{e.Term, e.Entry, e.Client, e.Seq, params})
	}
	f.vals = append(f.vals, f.cells[i])
}

func putAppendFrame(f *appendFrame) {
	for i := range f.vals {
		f.vals[i] = nil
	}
	f.vals = f.vals[:0]
	for i := range f.cells {
		c := f.cells[i]
		for j := range c {
			c[j] = nil
		}
		f.cells[i] = c[:0]
	}
	appendFramePool.Put(f)
}
