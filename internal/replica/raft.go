package replica

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
)

// run is the member's timer loop: as follower/candidate it watches for
// election timeout, as leader it drives heartbeats. One ticker at the
// heartbeat interval gives both enough resolution.
func (r *Replica) run() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		r.mu.Lock()
		switch r.role {
		case Leader:
			r.mu.Unlock()
			r.kickPeers()
		case Follower, Candidate:
			if time.Now().After(r.electionDeadline) {
				r.startElectionLocked() // unlocks
			} else {
				r.mu.Unlock()
			}
		}
	}
}

// resetElectionDeadline draws the next timeout from the member's seeded
// stream: [T, 2T) so two members rarely fire together, reproducibly so
// the failover schedule of a seeded test replays exactly.
func (r *Replica) resetElectionDeadline() {
	base := r.cfg.ElectionTimeout
	d := base + time.Duration(r.rng.Intn(int(base)))
	r.electionDeadline = time.Now().Add(d)
}

// startElectionLocked begins a candidacy: bump the term, vote for self,
// persist both before soliciting, then collect votes concurrently.
// Called with r.mu held; returns with it released.
func (r *Replica) startElectionLocked() {
	r.role = Candidate
	r.term++
	r.votedFor = r.cfg.ID
	r.leaderID = ""
	term := r.term
	lastIdx := r.lastIndex()
	lastTerm, _ := r.termAt(lastIdx)
	r.resetElectionDeadline()
	lsn := r.persistStateLocked()
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("election t%d: persist: %v", term, err)
		return
	}
	r.logf("election t%d: soliciting votes (last %d/t%d)", term, lastIdx, lastTerm)

	votes := make(chan bool, len(r.peers))
	for _, p := range r.peers {
		go func(p *peer) {
			granted, peerTerm, err := p.requestVote(term, r.cfg.ID, lastIdx, lastTerm)
			if err != nil {
				votes <- false
				return
			}
			if peerTerm > term {
				r.observeTerm(peerTerm)
				votes <- false
				return
			}
			votes <- granted
		}(p)
	}
	need := (len(r.peers)+1)/2 + 1 // quorum of the full group
	got := 1                       // self
	if got >= need {
		// Single-member group: the self vote is already a quorum.
		r.becomeLeader(term)
		return
	}
	go func() {
		for range r.peers {
			if <-votes {
				got++
			}
			if got >= need {
				r.becomeLeader(term)
				return
			}
		}
	}()
}

// becomeLeader transitions if the member is still the candidate of term.
// The fresh leader appends a no-op barrier entry: Raft never commits a
// prior-term entry by counting replicas, so the barrier is what lets the
// new leader commit everything it inherited — and what guarantees parked
// waiters resolve after a failover instead of hanging on an uncommittable
// tail.
func (r *Replica) becomeLeader(term uint64) {
	r.mu.Lock()
	if r.closed || r.role != Candidate || r.term != term {
		r.mu.Unlock()
		return
	}
	r.role = Leader
	r.leaderID = r.cfg.ID
	next := r.lastIndex() + 1
	for _, p := range r.peers {
		p.mu.Lock()
		p.nextIndex = next
		p.matchIndex = 0
		p.mu.Unlock()
	}
	barrier := entry{Term: term}
	idx := r.appendLocalLocked(barrier)
	lsn := r.persistAppendLocked(idx, barrier)
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("barrier persist: %v", err)
	}
	r.logf("leader of t%d (barrier at %d)", term, idx)
	r.kickPeers()
	r.maybeAdvanceCommit()
}

// observeTerm steps down if t is newer than ours — the single rule that
// keeps stale leaders from splitting the group's brain.
func (r *Replica) observeTerm(t uint64) {
	r.mu.Lock()
	lsn := uint64(0)
	if t > r.term {
		r.term = t
		r.votedFor = ""
		r.role = Follower
		r.leaderID = ""
		r.resetElectionDeadline()
		lsn = r.persistStateLocked()
	}
	r.mu.Unlock()
	if lsn != 0 {
		_ = r.waitSynced(lsn)
	}
}

// kickPeers nudges every replication loop: new entries to ship, a commit
// index to advertise, or just a heartbeat due.
func (r *Replica) kickPeers() {
	for _, p := range r.peers {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// maybeAdvanceCommit recomputes the quorum match point. Only entries of
// the CURRENT term commit by counting (the barrier carries the rest).
func (r *Replica) maybeAdvanceCommit() {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	matches := make([]uint64, 0, len(r.peers)+1)
	matches = append(matches, r.lastIndex())
	for _, p := range r.peers {
		p.mu.Lock()
		matches = append(matches, p.matchIndex)
		p.mu.Unlock()
	}
	// quorum-th highest match index is replicated on a majority.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] > matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	n := matches[(len(matches)-1)/2]
	if n > r.commitIndex {
		if t, ok := r.termAt(n); ok && t == r.term {
			r.commitIndex = n
			r.applyCond.Signal()
		}
	}
	r.mu.Unlock()
}

// --- peer: one replication target ---

// peer is the leader-side view of one other member: its lazily-dialed
// Remote, replication cursors, and the goroutine shipping entries to it.
type peer struct {
	r    *Replica
	id   string
	addr string
	kick chan struct{}

	mu         sync.Mutex
	rem        *rpc.Remote
	nextIndex  uint64
	matchIndex uint64
}

func newPeer(r *Replica, id, addr string) *peer {
	return &peer{r: r, id: id, addr: addr, kick: make(chan struct{}, 1), nextIndex: 1}
}

// ensure returns a live Remote, dialing on demand — a peer that is down
// at startup (or restarting after a crash) becomes reachable the moment
// its endpoint listens again.
func (p *peer) ensure() (*rpc.Remote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rem != nil {
		return p.rem, nil
	}
	conn, err := p.r.cfg.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	addr := p.addr
	p.rem = rpc.DialConnWith(conn, rpc.DialOptions{
		ClientID: p.r.cfg.ID + "->" + p.id,
		Redial:   func() (net.Conn, error) { return p.r.cfg.Dial(addr) },
	})
	return p.rem, nil
}

func (p *peer) close() {
	p.mu.Lock()
	rem := p.rem
	p.mu.Unlock()
	if rem != nil {
		rem.Close()
	}
}

// call issues one consensus RPC, bounded by the election timeout — a
// wedged peer must not pin the replication loop past the point where the
// group would re-elect anyway.
func (p *peer) call(entry string, params ...any) ([]any, error) {
	rem, err := p.ensure()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.r.cfg.ElectionTimeout)
	defer cancel()
	return rem.CallWith(ctx, rpc.CallOptions{}, ControlName(p.r.cfg.Group), entry, params...)
}

func (p *peer) requestVote(term uint64, candidate string, lastIdx, lastTerm uint64) (granted bool, peerTerm uint64, err error) {
	res, err := p.call("RequestVote", term, candidate, lastIdx, lastTerm)
	if err != nil {
		return false, 0, err
	}
	if len(res) != 2 {
		return false, 0, fmt.Errorf("replica: RequestVote: bad reply arity %d", len(res))
	}
	t, ok1 := res[0].(uint64)
	g, ok2 := res[1].(bool)
	if !ok1 || !ok2 {
		return false, 0, fmt.Errorf("replica: RequestVote: bad reply types")
	}
	return g, t, nil
}

// maxBatch bounds entries per AppendEntries frame: catch-up streams in
// chunks instead of one giant frame.
const maxBatch = 64

// loop ships log entries (and heartbeats) while our member leads; kicked
// on appends, commit changes and the heartbeat tick.
func (p *peer) loop() {
	r := p.r
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-p.kick:
		}
		for {
			if !p.replicateOnce() {
				break
			}
		}
	}
}

// replicateOnce sends one AppendEntries (or InstallSnapshot) round.
// Returns true when there is definitely more to ship right now.
func (p *peer) replicateOnce() bool {
	r := p.r
	r.mu.Lock()
	if r.closed || r.role != Leader {
		r.mu.Unlock()
		return false
	}
	term := r.term
	commit := r.commitIndex
	p.mu.Lock()
	next := p.nextIndex
	p.mu.Unlock()

	if next <= r.snapIndex && r.snapBlob != nil {
		// The entries this peer needs are compacted away: ship the
		// snapshot, then resume the log from its floor.
		blob := r.snapBlob
		snapIdx, snapTerm := r.snapIndex, r.snapTerm
		r.mu.Unlock()
		res, err := p.call("InstallSnapshot", term, r.cfg.ID, snapIdx, snapTerm, blob)
		if err != nil {
			return false
		}
		if len(res) == 1 {
			if t, ok := res[0].(uint64); ok && t > term {
				r.observeTerm(t)
				return false
			}
		}
		p.mu.Lock()
		if p.nextIndex < snapIdx+1 {
			p.nextIndex = snapIdx + 1
		}
		if p.matchIndex < snapIdx {
			p.matchIndex = snapIdx
		}
		p.mu.Unlock()
		r.maybeAdvanceCommit()
		return true
	}

	prev := next - 1
	prevTerm, ok := r.termAt(prev)
	if !ok {
		// prev is below our snapshot floor and we have no blob to ship
		// (compaction disabled): restart the peer from the floor.
		p.mu.Lock()
		p.nextIndex = r.snapIndex + 1
		p.mu.Unlock()
		r.mu.Unlock()
		return true
	}
	last := r.lastIndex()
	n := int(last - prev)
	if n > maxBatch {
		n = maxBatch
	}
	batch := make([]any, 0, n)
	for i := 0; i < n; i++ {
		e, _ := r.entryAt(prev + 1 + uint64(i))
		batch = append(batch, encodeEntry(e))
	}
	r.mu.Unlock()

	res, err := p.call("AppendEntries", term, r.cfg.ID, prev, prevTerm, commit, batch)
	if err != nil {
		return false
	}
	peerTerm, success, conflict, derr := decodeAppendReply(res)
	if derr != nil {
		return false
	}
	if peerTerm > term {
		r.observeTerm(peerTerm)
		return false
	}
	if success {
		p.mu.Lock()
		match := prev + uint64(len(batch))
		if match > p.matchIndex {
			p.matchIndex = match
		}
		if match+1 > p.nextIndex {
			p.nextIndex = match + 1
		}
		next := p.nextIndex
		p.mu.Unlock()
		r.maybeAdvanceCommit()
		r.mu.Lock()
		more := next <= r.lastIndex()
		r.mu.Unlock()
		return more
	}
	// Log mismatch: back off to the follower's hint and retry immediately.
	p.mu.Lock()
	if conflict == 0 || conflict >= p.nextIndex {
		p.nextIndex--
		if p.nextIndex == 0 {
			p.nextIndex = 1
		}
	} else {
		p.nextIndex = conflict
	}
	p.mu.Unlock()
	return true
}

func decodeAppendReply(res []any) (term uint64, success bool, conflict uint64, err error) {
	if len(res) != 3 {
		return 0, false, 0, fmt.Errorf("replica: AppendEntries: bad reply arity %d", len(res))
	}
	t, ok1 := res[0].(uint64)
	s, ok2 := res[1].(bool)
	c, ok3 := res[2].(uint64)
	if !ok1 || !ok2 || !ok3 {
		return 0, false, 0, fmt.Errorf("replica: AppendEntries: bad reply types")
	}
	return t, s, c, nil
}
