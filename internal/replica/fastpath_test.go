package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/simnet"
	"repro/internal/wal"
	"repro/internal/wire"
)

// isGet classifies the kvObj's read-only entry for the ReadIndex tests.
func isGet(entry string) bool { return entry == "Get" }

// TestCombinedProposalsFIFO drives a durable leader with many concurrent
// proposers and checks the two combining invariants at once: per-client
// FIFO survives (every proposer sees its own gapless counter sequence)
// and combining actually happened (strictly fewer append rounds — and
// thus journal syncs — than proposals). Combining is an
// arrival-during-round phenomenon, so the test manufactures the overlap
// deterministically: it holds r.mu — which commitRound needs — while the
// first burst of proposers enqueues, exactly as a slow fsync or a
// contended lock would in production, then releases and lets the
// combiner drain the pile-up as one window. The members journal to real
// wal stores so the combined round exercises the multi-entry persist +
// single WaitSynced path it exists to amortize.
func TestCombinedProposalsFIFO(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 31})
	met := &rpc.Metrics{}
	ids := []string{"A", "B", "C"}
	peers := map[string]string{"A": "A", "B": "B", "C": "C"}
	members := make([]*member, 0, len(ids))
	for _, id := range ids {
		store, err := wal.OpenStore(t.TempDir(), wal.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = store.Close() })
		members = append(members, startMember(t, nw, id, peers, 17, groupOpts{store: store, metrics: met}))
	}
	lead := waitLeader(t, members, 2*time.Second)

	const clients = 32
	const calls = 20
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Stall the first round mid-flight: whichever proposer becomes the
	// combiner blocks inside commitRound on r.mu while every other
	// client's first proposal parks in the queue behind it.
	lead.rep.mu.Lock()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", c)
			client := fmt.Sprintf("cli-%d", c)
			for i := uint64(1); i <= calls; i++ {
				res, err := lead.rep.CallSession(ctx, client, i, "Inc", []any{key})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", c, i, err)
					return
				}
				if got := res[0].(uint64); got != i {
					errs <- fmt.Errorf("client %d call %d returned %d — FIFO broken under combining", c, i, got)
					return
				}
			}
		}(c)
	}
	// Release once most of the burst is parked (the combiner's own
	// proposal has already left the queue, so the threshold is below
	// clients); the combiner then drains the pile-up in one window.
	for deadline := time.Now().Add(2 * time.Second); ; {
		lead.rep.propMu.Lock()
		parked := len(lead.rep.propQ)
		lead.rep.propMu.Unlock()
		if parked >= clients*3/4 {
			break
		}
		if time.Now().After(deadline) {
			lead.rep.mu.Unlock()
			t.Fatalf("only %d proposals parked behind the stalled round", parked)
		}
		time.Sleep(time.Millisecond)
	}
	lead.rep.mu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		waitValue(t, members, fmt.Sprintf("k%d", c), calls, 2*time.Second)
	}
	proposals, rounds, combined := met.ReplProposals.Value(), met.ReplRounds.Value(), met.ReplCombined.Value()
	t.Logf("proposals=%d rounds=%d combined=%d batch=%s", proposals, rounds, combined, met.ReplBatch.String())
	if proposals < clients*calls {
		t.Fatalf("counted %d proposals, want >= %d", proposals, clients*calls)
	}
	if combined == 0 || rounds >= proposals {
		t.Fatalf("no combining observed: %d proposals in %d rounds", proposals, rounds)
	}
}

// TestReadIndexServesWithoutLog: reads classified by Config.ReadOnly are
// served from leader state without growing the replicated log — the
// applied frontier stays put across a burst of reads, the values are the
// committed ones, and the metrics account for every fast-path serve.
func TestReadIndexServesWithoutLog(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 32})
	met := &rpc.Metrics{}
	members := startGroup(t, nw, []string{"A", "B", "C"}, 19, groupOpts{metrics: met, readOnly: isGet})
	lead := waitLeader(t, members, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const writes = 7
	for i := uint64(1); i <= writes; i++ {
		if _, err := lead.rep.CallSession(ctx, "w", i, "Inc", []any{"k"}); err != nil {
			t.Fatalf("Inc %d: %v", i, err)
		}
	}
	applied := lead.rep.Applied()

	const reads = 25
	for i := 0; i < reads; i++ {
		res, err := lead.rep.CallCtx(ctx, "Get", "k")
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if got := res[0].(uint64); got != writes {
			t.Fatalf("Get returned %d, want %d", got, writes)
		}
	}
	if after := lead.rep.Applied(); after != applied {
		t.Fatalf("reads moved the applied frontier %d → %d — they went through the log", applied, after)
	}
	if served := met.ReplReads.Value(); served != reads {
		t.Fatalf("metrics counted %d fast-path reads, want %d", served, reads)
	}
	if rounds := met.ReplReadRounds.Value(); rounds == 0 {
		t.Fatal("no quorum confirmation rounds issued for reads")
	}

	// A follower must bounce reads with the typed retryable error, like
	// any other call — DialMulti clients rotate to the leader on it.
	for _, m := range members {
		if m == lead {
			continue
		}
		_, err := m.rep.CallCtx(ctx, "Get", "k")
		if err == nil {
			t.Fatalf("%s (follower) served a read", m.id)
		}
		if !errors.Is(err, wire.ErrNotLeader) {
			t.Fatalf("%s bounced read with %v, want wire.ErrNotLeader", m.id, err)
		}
	}
}

// TestReadIndexAfterFailoverObservesCommittedPrefix: writes committed
// under the old leader must be visible to the first successful read on
// the new leader — the accession-barrier gate is what forbids the fresh
// leader from serving its stale commit frontier.
func TestReadIndexAfterFailoverObservesCommittedPrefix(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 33})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 29, groupOpts{readOnly: isGet})
	lead := waitLeader(t, members, 2*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const writes = 10
	for i := uint64(1); i <= writes; i++ {
		if _, err := lead.rep.CallSession(ctx, "w", i, "Inc", []any{"k"}); err != nil {
			t.Fatalf("Inc %d: %v", i, err)
		}
	}
	lead.crash(nw)
	var live []*member
	for _, m := range members {
		if m != lead {
			live = append(live, m)
		}
	}
	newLead := waitLeader(t, live, 2*time.Second)

	// The first reads may bounce retryable while the barrier commits;
	// the first one that SUCCEEDS must already see the full prefix.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := newLead.rep.CallCtx(ctx, "Get", "k")
		if err == nil {
			if got := res[0].(uint64); got != writes {
				t.Fatalf("first successful post-failover read returned %d, want %d — committed prefix missed", got, writes)
			}
			return
		}
		if !errors.Is(err, wire.ErrNotLeader) && !errors.Is(err, ErrClosed) {
			t.Fatalf("post-failover read failed non-retryable: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never succeeded on the new leader: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipelinedFailoverChaosSoak is the CI race soak for the pipelined
// path: concurrent retrying clients, a 2% connection-kill probability,
// and a leader kill in the middle of the run. Every client's counter
// sequence must stay gapless and duplicate-free — reordered or replayed
// AppendEntries frames from the in-flight window must never double-apply.
func TestPipelinedFailoverChaosSoak(t *testing.T) {
	nw := simnet.New(simnet.Config{Seed: 34, KillProb: 0.02})
	members := startGroup(t, nw, []string{"A", "B", "C"}, 37, groupOpts{})
	lead := waitLeader(t, members, 2*time.Second)

	const clients = 4
	const calls = 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var once sync.Once
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := groupClient(t, nw, fmt.Sprintf("soak-%d", c), []string{"A", "B", "C"})
			key := fmt.Sprintf("k%d", c)
			for i := uint64(1); i <= calls; i++ {
				res, err := cli.Call("KV", "Inc", key)
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", c, i, err)
					return
				}
				if got := res[0].(uint64); got != i {
					errs <- fmt.Errorf("client %d call %d returned %d — exactly-once violated", c, i, got)
					return
				}
				if i == calls/2 {
					// Halfway through the first client's run, kill the
					// leader once: the rest of every sequence rides the
					// failover.
					once.Do(func() { lead.crash(nw) })
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var live []*member
	for _, m := range members {
		if m != lead {
			live = append(live, m)
		}
	}
	for c := 0; c < clients; c++ {
		waitValue(t, live, fmt.Sprintf("k%d", c), calls, 5*time.Second)
	}
	kills, _, _ := nw.Stats()
	t.Logf("survived %d connection kills plus one leader kill", kills)
}
