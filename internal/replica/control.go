package replica

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// control is the consensus endpoint a member publishes under
// ControlName(group): votes, append-entries batches and snapshot installs
// arrive as ordinary rpc requests — wire.Frames on the same pipelined
// transport, coalesced into the same batched flushes, guarded by the same
// CRCs as client traffic. Handlers type-check every parameter: the codec
// only guarantees frames are structurally legal, and a hostile or
// corrupted-but-CRC-colliding peer must get an error, not a panic.
type control struct {
	r *Replica
}

// CallCtx implements rpc.Callable for the four consensus procedures.
func (c *control) CallCtx(_ context.Context, entry string, params ...any) ([]any, error) {
	switch entry {
	case "RequestVote":
		return c.requestVote(params)
	case "AppendEntries":
		return c.appendEntries(params)
	case "Heartbeat":
		return c.heartbeat(params)
	case "InstallSnapshot":
		return c.installSnapshot(params)
	default:
		return nil, fmt.Errorf("replica: %w: %q", core.ErrUnknownEntry, entry)
	}
}

// requestVote: params [term, candidateID, lastLogIndex, lastLogTerm],
// reply [term, granted]. The vote is durable before it is granted — a
// member that promises, crashes and restarts must keep its promise.
func (c *control) requestVote(params []any) ([]any, error) {
	term, err := asU64(params, 0)
	candidate, err2 := asStr(params, 1)
	lastIdx, err3 := asU64(params, 2)
	lastTerm, err4 := asU64(params, 3)
	if err = firstErr(err, err2, err3, err4); err != nil {
		return nil, fmt.Errorf("replica: RequestVote: %w", err)
	}
	r := c.r
	r.mu.Lock()
	if term > r.term {
		r.term = term
		r.votedFor = ""
		r.role = Follower
		r.leaderID = ""
		r.failReadsLocked(wire.ErrNotLeader)
	}
	if term < r.term {
		reply := []any{r.term, false}
		r.mu.Unlock()
		return reply, nil
	}
	myLastIdx := r.lastIndex()
	myLastTerm, _ := r.termAt(myLastIdx)
	upToDate := lastTerm > myLastTerm || (lastTerm == myLastTerm && lastIdx >= myLastIdx)
	grant := (r.votedFor == "" || r.votedFor == candidate) && upToDate
	var lsn uint64
	if grant {
		r.votedFor = candidate
		r.resetElectionDeadline()
		lsn = r.persistStateLocked()
	}
	curTerm := r.term
	r.mu.Unlock()
	if lsn != 0 {
		if err := r.waitSynced(lsn); err != nil {
			return nil, fmt.Errorf("replica: RequestVote: persist: %w", err)
		}
	}
	if grant {
		r.logf("granted vote to %s for t%d", candidate, term)
	}
	return []any{curTerm, grant}, nil
}

// appendEntries: params [term, leaderID, prevIndex, prevTerm,
// leaderCommit, entries], reply [term, success, conflictIndex]. Appended
// entries are synced before the success reply: the leader counts this
// reply toward quorum, so "acknowledged" must mean "on stable storage" —
// the same contract client acks honor (docs/DURABILITY.md).
func (c *control) appendEntries(params []any) ([]any, error) {
	term, err := asU64(params, 0)
	leader, err2 := asStr(params, 1)
	prev, err3 := asU64(params, 2)
	prevTerm, err4 := asU64(params, 3)
	commit, err5 := asU64(params, 4)
	batch, err6 := asSlice(params, 5)
	if err = firstErr(err, err2, err3, err4, err5, err6); err != nil {
		return nil, fmt.Errorf("replica: AppendEntries: %w", err)
	}
	entries := make([]entry, len(batch))
	for i, raw := range batch {
		e, derr := decodeEntry(raw)
		if derr != nil {
			return nil, fmt.Errorf("replica: AppendEntries: entry %d: %w", i, derr)
		}
		entries[i] = e
	}

	r := c.r
	r.mu.Lock()
	if term < r.term {
		reply := []any{r.term, false, uint64(0)}
		r.mu.Unlock()
		return reply, nil
	}
	stateDirty := term > r.term
	r.term = term
	if r.role != Follower {
		r.role = Follower
		r.failReadsLocked(wire.ErrNotLeader)
	}
	if stateDirty {
		r.votedFor = ""
	}
	r.leaderID = leader
	r.resetElectionDeadline()

	// Pipelined frames are served on independent goroutines, so a later
	// frame can overtake its predecessor on the way in. If this frame
	// starts past our tail, give the in-flight predecessor a bounded
	// moment to land before hinting the leader into a rewind — turning
	// the common reorder into a sub-millisecond wait instead of a
	// resend burst.
	for spins := 0; prev > r.lastIndex() && prev > r.snapIndex && r.term == term && !r.closed && spins < 16; spins++ {
		r.mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		r.mu.Lock()
	}
	if r.term != term {
		// A newer term moved in while we waited; this frame is stale.
		reply := []any{r.term, false, uint64(0)}
		r.mu.Unlock()
		return reply, nil
	}

	// Entries at or below our snapshot floor are already committed and
	// applied here; trim them off rather than refusing the batch.
	if prev < r.snapIndex {
		trim := r.snapIndex - prev
		if trim >= uint64(len(entries)) {
			reply := []any{r.term, true, uint64(0)}
			var lsn uint64
			if stateDirty {
				lsn = r.persistStateLocked()
			}
			r.mu.Unlock()
			if lsn != 0 {
				_ = r.waitSynced(lsn)
			}
			return reply, nil
		}
		entries = entries[trim:]
		prev = r.snapIndex
		prevTerm = r.snapTerm
	}
	if prev > r.lastIndex() {
		// We are missing everything before this batch: tell the leader
		// where our log ends so it backs off in one hop.
		reply := []any{r.term, false, r.lastIndex() + 1}
		var lsn uint64
		if stateDirty {
			lsn = r.persistStateLocked()
		}
		r.mu.Unlock()
		if lsn != 0 {
			_ = r.waitSynced(lsn)
		}
		return reply, nil
	}
	if t, ok := r.termAt(prev); !ok || t != prevTerm {
		// Conflict at prev: hint the first index of the conflicting term
		// so the leader skips the whole run instead of probing one by one.
		conflict := prev
		if ok {
			for conflict > r.snapIndex+1 {
				ct, cok := r.termAt(conflict - 1)
				if !cok || ct != t {
					break
				}
				conflict--
			}
		}
		reply := []any{r.term, false, conflict}
		var lsn uint64
		if stateDirty {
			lsn = r.persistStateLocked()
		}
		r.mu.Unlock()
		if lsn != 0 {
			_ = r.waitSynced(lsn)
		}
		return reply, nil
	}

	var lastLSN uint64
	if stateDirty {
		lastLSN = r.persistStateLocked()
	}
	for i, e := range entries {
		idx := prev + 1 + uint64(i)
		if idx <= r.lastIndex() {
			if t, _ := r.termAt(idx); t == e.Term {
				continue // already have it
			}
			// Conflicting suffix: ours loses. Persist the truncation so
			// recovery rebuilds the same log shape, and fail any local
			// waiters parked on the overwritten proposals.
			lastLSN = r.persistTruncateLocked(idx)
			r.truncateFromLocked(idx)
		}
		at := r.appendLocalLocked(e)
		lastLSN = r.persistAppendLocked(at, e)
	}
	if commit > r.commitIndex {
		last := r.lastIndex()
		if commit > last {
			commit = last
		}
		if commit > r.commitIndex {
			r.commitIndex = commit
			r.applyCond.Signal()
		}
	}
	curTerm := r.term
	r.mu.Unlock()
	if lastLSN != 0 {
		if err := r.waitSynced(lastLSN); err != nil {
			return nil, fmt.Errorf("replica: AppendEntries: persist: %w", err)
		}
	}
	return []any{curTerm, true, uint64(0)}, nil
}

// heartbeat: params [term, leaderID, confirm], reply [term, ok, confirm].
// A pure leadership probe for the ReadIndex fast path: no prev/entries
// consistency check, no commit advance — just "do you still recognize my
// term", with the confirmation round echoed back so the leader can count
// this reply toward a read quorum. Commit advertisement stays on
// AppendEntries, whose prev check is what makes advancing commit safe; a
// heartbeat that advanced commit over an unverified log could apply the
// wrong entries.
func (c *control) heartbeat(params []any) ([]any, error) {
	term, err := asU64(params, 0)
	leader, err2 := asStr(params, 1)
	confirm, err3 := asU64(params, 2)
	if err = firstErr(err, err2, err3); err != nil {
		return nil, fmt.Errorf("replica: Heartbeat: %w", err)
	}
	r := c.r
	r.mu.Lock()
	if term < r.term {
		reply := []any{r.term, false, confirm}
		r.mu.Unlock()
		return reply, nil
	}
	stateDirty := term > r.term
	r.term = term
	if r.role != Follower {
		r.role = Follower
		r.failReadsLocked(wire.ErrNotLeader)
	}
	if stateDirty {
		r.votedFor = ""
	}
	r.leaderID = leader
	r.resetElectionDeadline()
	var lsn uint64
	if stateDirty {
		lsn = r.persistStateLocked()
	}
	curTerm := r.term
	r.mu.Unlock()
	if lsn != 0 {
		// The term bump is a promise (no votes below it); sync it before
		// the reply leaves, like every other consensus acknowledgement.
		if err := r.waitSynced(lsn); err != nil {
			return nil, fmt.Errorf("replica: Heartbeat: persist: %w", err)
		}
	}
	return []any{curTerm, true, confirm}, nil
}

// installSnapshot: params [term, leaderID, lastIndex, lastTerm, blob],
// reply [term]. The snapshot is journaled before the reply; the actual
// state restore happens on the apply loop, where it cannot race an entry
// execution.
func (c *control) installSnapshot(params []any) ([]any, error) {
	term, err := asU64(params, 0)
	leader, err2 := asStr(params, 1)
	lastIdx, err3 := asU64(params, 2)
	lastTerm, err4 := asU64(params, 3)
	blob, err5 := asBytes(params, 4)
	if err = firstErr(err, err2, err3, err4, err5); err != nil {
		return nil, fmt.Errorf("replica: InstallSnapshot: %w", err)
	}
	snap, err := decodeSnapshot(blob)
	if err != nil {
		return nil, fmt.Errorf("replica: InstallSnapshot: %w", err)
	}
	if snap.LastIndex != lastIdx || snap.LastTerm != lastTerm {
		return nil, fmt.Errorf("replica: InstallSnapshot: envelope %d/t%d disagrees with payload %d/t%d",
			lastIdx, lastTerm, snap.LastIndex, snap.LastTerm)
	}

	r := c.r
	r.mu.Lock()
	if term < r.term {
		reply := []any{r.term}
		r.mu.Unlock()
		return reply, nil
	}
	stateDirty := term > r.term
	r.term = term
	if r.role != Follower {
		r.failReadsLocked(wire.ErrNotLeader)
	}
	r.role = Follower
	if stateDirty {
		r.votedFor = ""
	}
	r.leaderID = leader
	r.resetElectionDeadline()
	if lastIdx <= r.commitIndex {
		// Stale: we already have (or will apply) everything it covers.
		reply := []any{r.term}
		r.mu.Unlock()
		return reply, nil
	}
	// The snapshot supersedes the log wholesale; conflicting local
	// proposals (there should be none on a follower this far behind) fail.
	r.truncateFromLocked(r.snapIndex + 1)
	r.log = nil
	r.snapIndex, r.snapTerm, r.snapBlob = lastIdx, lastTerm, blob
	r.commitIndex = lastIdx
	r.pendingSnap = snap
	lsn := r.persistSnapshotLocked(lastIdx, lastTerm, blob)
	if stateDirty {
		lsn = r.persistStateLocked()
	}
	curTerm := r.term
	r.applyCond.Signal()
	r.mu.Unlock()
	if lsn != 0 {
		if err := r.waitSynced(lsn); err != nil {
			return nil, fmt.Errorf("replica: InstallSnapshot: persist: %w", err)
		}
	}
	r.logf("accepted snapshot through %d/t%d from %s", lastIdx, lastTerm, leader)
	return []any{curTerm}, nil
}

// --- wire-shape helpers ---

// encodeEntry flattens a log entry into the nested-[]any shape the wire
// codec carries natively: [term, entry, client, seq, params].
func encodeEntry(e entry) []any {
	params := e.Params
	if params == nil {
		params = []any{}
	}
	return []any{e.Term, e.Entry, e.Client, e.Seq, params}
}

func decodeEntry(raw any) (entry, error) {
	f, ok := raw.([]any)
	if !ok || len(f) != 5 {
		return entry{}, fmt.Errorf("bad entry shape %T", raw)
	}
	term, ok1 := f[0].(uint64)
	name, ok2 := f[1].(string)
	client, ok3 := f[2].(string)
	seq, ok4 := f[3].(uint64)
	params, ok5 := f[4].([]any)
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return entry{}, fmt.Errorf("bad entry field types")
	}
	return entry{Term: term, Entry: name, Client: client, Seq: seq, Params: params}, nil
}

func asU64(params []any, i int) (uint64, error) {
	if i >= len(params) {
		return 0, fmt.Errorf("missing param %d", i)
	}
	v, ok := params[i].(uint64)
	if !ok {
		return 0, fmt.Errorf("param %d: want uint64, got %T", i, params[i])
	}
	return v, nil
}

func asStr(params []any, i int) (string, error) {
	if i >= len(params) {
		return "", fmt.Errorf("missing param %d", i)
	}
	v, ok := params[i].(string)
	if !ok {
		return "", fmt.Errorf("param %d: want string, got %T", i, params[i])
	}
	return v, nil
}

func asSlice(params []any, i int) ([]any, error) {
	if i >= len(params) {
		return nil, fmt.Errorf("missing param %d", i)
	}
	v, ok := params[i].([]any)
	if !ok {
		return nil, fmt.Errorf("param %d: want []any, got %T", i, params[i])
	}
	return v, nil
}

func asBytes(params []any, i int) ([]byte, error) {
	if i >= len(params) {
		return nil, fmt.Errorf("missing param %d", i)
	}
	v, ok := params[i].([]byte)
	if !ok {
		return nil, fmt.Errorf("param %d: want []byte, got %T", i, params[i])
	}
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// electionPatience is the in-package yardstick tests use to size
// failover waits: two full election timeouts comfortably cover one
// split vote plus the winning round.
func (r *Replica) electionPatience() time.Duration {
	return 2 * r.cfg.ElectionTimeout
}
