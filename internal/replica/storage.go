package replica

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/wal"
)

// Consensus state rides the node's existing write-ahead log as
// wal.KindReplica records, reusing the Record vocabulary instead of
// inventing a sidecar file format: Object names the group, Entry the
// sub-kind, Seq carries a term, CallID a log index. One wal.Store serves
// the object journals, the ack ledger AND the consensus log, so a single
// group-committed sync covers all three.
//
// Sub-kinds:
//
//	"state"    — hard state: Seq=term, Client=votedFor
//	"append"   — log entry at CallID: Seq=term,
//	             Params=[entryName, client, seq, params]
//	"truncate" — conflict truncation: entries >= CallID are dead
//	"snapshot" — compaction floor: CallID=lastIndex, Seq=lastTerm,
//	             Params=[blob]
//
// Recovery folds the records in LSN order, which replays exactly the
// append/truncate/snapshot history the previous incarnation performed.
const (
	subState    = "state"
	subAppend   = "append"
	subTruncate = "truncate"
	subSnapshot = "snapshot"
)

// persistStateLocked journals term+vote; r.mu held. Returns the LSN to
// sync through (0 when the member is in-memory only).
func (r *Replica) persistStateLocked() uint64 {
	if r.cfg.Store == nil {
		return 0
	}
	lsn, err := r.cfg.Store.AppendReplica(&wal.Record{
		Object: r.cfg.Group, Entry: subState, Seq: r.term, Client: r.votedFor,
	})
	if err != nil {
		r.logf("persist state: %v", err)
		return 0
	}
	return lsn
}

func (r *Replica) persistAppendLocked(idx uint64, e entry) uint64 {
	if r.cfg.Store == nil {
		return 0
	}
	params := e.Params
	if params == nil {
		params = []any{}
	}
	lsn, err := r.cfg.Store.AppendReplica(&wal.Record{
		Object: r.cfg.Group, Entry: subAppend, Seq: e.Term, CallID: idx,
		Params: []any{e.Entry, e.Client, e.Seq, params},
	})
	if err != nil {
		r.logf("persist append %d: %v", idx, err)
		return 0
	}
	return lsn
}

// persistAppendsLocked journals a combined round's run of entries
// starting at first, returning the highest LSN that must be synced before
// the round is acknowledged. One WaitSynced on the returned LSN covers
// the whole run — the wal's group commit turns the window's appends into
// a single fsync, which is the cost model the proposal combiner banks on.
func (r *Replica) persistAppendsLocked(first uint64, entries []entry) uint64 {
	if r.cfg.Store == nil {
		return 0
	}
	var last uint64
	for i := range entries {
		if lsn := r.persistAppendLocked(first+uint64(i), entries[i]); lsn != 0 {
			last = lsn
		}
	}
	return last
}

func (r *Replica) persistTruncateLocked(fromIdx uint64) uint64 {
	if r.cfg.Store == nil {
		return 0
	}
	lsn, err := r.cfg.Store.AppendReplica(&wal.Record{
		Object: r.cfg.Group, Entry: subTruncate, CallID: fromIdx,
	})
	if err != nil {
		r.logf("persist truncate %d: %v", fromIdx, err)
		return 0
	}
	return lsn
}

func (r *Replica) persistSnapshotLocked(lastIdx, lastTerm uint64, blob []byte) uint64 {
	if r.cfg.Store == nil {
		return 0
	}
	lsn, err := r.cfg.Store.AppendReplica(&wal.Record{
		Object: r.cfg.Group, Entry: subSnapshot, Seq: lastTerm, CallID: lastIdx,
		Params: []any{blob},
	})
	if err != nil {
		r.logf("persist snapshot %d: %v", lastIdx, err)
		return 0
	}
	return lsn
}

// waitSynced blocks until lsn is on stable storage (no-op when in-memory
// or when the append already failed and returned 0 — the error was logged
// and the member keeps running degraded rather than wedging the group).
func (r *Replica) waitSynced(lsn uint64) error {
	if r.cfg.Store == nil || lsn == 0 {
		return nil
	}
	return r.cfg.Store.WaitSynced(lsn)
}

// recover folds the staged KindReplica records of this group back into
// term, vote, log and snapshot floor — the promises the previous
// incarnation synced before acting on them. Called once from New, before
// any peer contact.
func (r *Replica) recover() error {
	if r.cfg.Store == nil {
		return nil
	}
	recs := r.cfg.Store.ReplicaRecords(r.cfg.Group)
	for _, rec := range recs {
		switch rec.Entry {
		case subState:
			r.term = rec.Seq
			r.votedFor = rec.Client
		case subAppend:
			idx := rec.CallID
			if idx <= r.snapIndex {
				continue // compacted later in the record stream's history
			}
			if len(rec.Params) != 4 {
				return fmt.Errorf("replica %s: recover: append@%d: bad params", r.cfg.ID, idx)
			}
			name, ok1 := rec.Params[0].(string)
			client, ok2 := rec.Params[1].(string)
			seq, ok3 := rec.Params[2].(uint64)
			params, ok4 := rec.Params[3].([]any)
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return fmt.Errorf("replica %s: recover: append@%d: bad param types", r.cfg.ID, idx)
			}
			// An append at an occupied index implies the truncation the
			// live path journaled just before it; handle both shapes.
			if idx <= r.lastIndex() {
				r.log = r.log[:idx-r.snapIndex-1]
			}
			if idx != r.lastIndex()+1 {
				return fmt.Errorf("replica %s: recover: append@%d leaves a gap after %d", r.cfg.ID, idx, r.lastIndex())
			}
			r.log = append(r.log, entry{Term: rec.Seq, Entry: name, Client: client, Seq: seq, Params: params})
		case subTruncate:
			idx := rec.CallID
			if idx <= r.snapIndex {
				continue
			}
			if idx <= r.lastIndex() {
				r.log = r.log[:idx-r.snapIndex-1]
			}
		case subSnapshot:
			if len(rec.Params) != 1 {
				return fmt.Errorf("replica %s: recover: snapshot@%d: bad params", r.cfg.ID, rec.CallID)
			}
			blob, ok := rec.Params[0].([]byte)
			if !ok {
				return fmt.Errorf("replica %s: recover: snapshot@%d: bad blob type", r.cfg.ID, rec.CallID)
			}
			// Drop the covered prefix, keep any suffix beyond the floor.
			if rec.CallID > r.snapIndex {
				covered := rec.CallID - r.snapIndex
				if covered >= uint64(len(r.log)) {
					r.log = nil
				} else {
					r.log = append([]entry(nil), r.log[covered:]...)
				}
				r.snapIndex, r.snapTerm, r.snapBlob = rec.CallID, rec.Seq, blob
			}
		default:
			return fmt.Errorf("replica %s: recover: unknown sub-kind %q", r.cfg.ID, rec.Entry)
		}
	}
	// Rebuild the applied state from the recovered snapshot; the log
	// suffix beyond it re-applies once the group's next leader commits it
	// (the no-op barrier), exactly the snapshot+replay discipline of PR 6.
	if r.snapBlob != nil {
		snap, err := decodeSnapshot(r.snapBlob)
		if err != nil {
			return fmt.Errorf("replica %s: recover: %w", r.cfg.ID, err)
		}
		if r.cfg.Restore != nil {
			if err := r.cfg.Restore(snap.State); err != nil {
				return fmt.Errorf("replica %s: recover: restore: %w", r.cfg.ID, err)
			}
		}
		r.sessions.Load(snap.Sessions)
		r.applied = r.snapIndex
		r.commitIndex = r.snapIndex
	}
	if len(recs) > 0 {
		r.logf("recovered t%d vote=%q log=[%d..%d]", r.term, r.votedFor, r.snapIndex+1, r.lastIndex())
	}
	return nil
}

// snapshotPayload is the catch-up unit a leader ships to a straggler and
// the compaction floor recovery restores from: object state plus the
// session table, TOGETHER — a snapshot that remembered an acknowledged
// call but not its effects (or vice versa) would break exactly-once.
type snapshotPayload struct {
	LastIndex uint64
	LastTerm  uint64
	State     []byte
	Sessions  []wal.AckEntry
}

func encodeSnapshot(s *snapshotPayload) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("replica: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeSnapshot(blob []byte) (*snapshotPayload, error) {
	var s snapshotPayload
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return nil, fmt.Errorf("replica: decode snapshot: %w", err)
	}
	return &s, nil
}
