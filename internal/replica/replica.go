// Package replica makes an ALPS object survive the death of its host: a
// Raft-style replicated log carries the object's call ledger — entry name,
// parameters, and the caller's (client, seq) at-most-once identity —
// across 3+ rpc.Nodes, so when the leader is killed mid-traffic a new
// leader finishes the group's work with the paper's managed-object
// semantics intact (docs/REPLICATION.md).
//
// The design reuses the substrate the earlier PRs built instead of
// inventing a parallel one:
//
//   - Consensus messages are ordinary wire.Frame requests on the pipelined
//     rpc transport, addressed to a control endpoint the node publishes
//     under ControlName(group) — no second codec, no second connection
//     pool, and the coalescing write path batches consensus and client
//     traffic together.
//   - The (client, seq) dedup cache of PR 1 doubles as the client-session
//     table (rpc.SessionTable): every member records each committed call's
//     response at apply time, in log order, so a call retried against a
//     NEW leader after a failover replays the recorded response instead of
//     re-executing the entry body — exactly-once across the failover.
//   - Each member's consensus state (term, vote, log, snapshot floors) is
//     durable through the same wal.Store that journals objects and acks
//     (wal.KindReplica records), so a kill -9'd member recovers its
//     promises before rejoining.
//
// Scheduling note: commits are applied to the live object SEQUENTIALLY, in
// log order, which is what makes per-key FIFO trivial across a failover.
// The flip side is that a blocking guarded entry would stall the whole
// group's apply loop; replicate non-blocking entries (guards that shed or
// fail instead of parking) — see docs/REPLICATION.md §limits.
package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ControlName returns the published name of a group's consensus endpoint
// on each member node. The "!" prefix keeps it out of the object
// namespace users see.
func ControlName(group string) string { return "!raft:" + group }

// ErrClosed is returned by calls on a closed replica.
var ErrClosed = errors.New("replica: closed")

// Role is a member's current consensus role.
type Role int

const (
	Follower Role = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Config describes one member of a replication group.
type Config struct {
	// ID is this member's name; it must be a key of Peers.
	ID string
	// Group is the replicated object's published name; the consensus
	// endpoint rides under ControlName(Group).
	Group string
	// Peers maps member ID → node address for the whole group, self
	// included. Membership is static for the group's lifetime; a restarted
	// member rejoins under its old ID at the same address.
	Peers map[string]string
	// Dial opens a transport to a peer address. Defaults to TCP with a 2s
	// timeout; tests inject simnet dials here.
	Dial func(addr string) (net.Conn, error)
	// Store, when non-nil, makes this member's consensus state durable:
	// term and vote are synced before they are acted on, log entries
	// before they are acknowledged — the same ack-before-response
	// discipline the rpc layer uses for client responses.
	Store *wal.Store
	// ElectionTimeout is the base follower patience; an election fires
	// after a seeded-random duration in [T, 2T) without leader contact
	// (default 150ms). Heartbeats default to T/10.
	ElectionTimeout time.Duration
	Heartbeat       time.Duration
	// Seed drives the randomized election timeouts, XORed with the
	// member ID's hash so members draw distinct but reproducible
	// sequences — the knob that makes failover schedules replayable.
	Seed uint64
	// SessionCap bounds the replicated session table (default 1024). It
	// MUST be identical across the group or session eviction diverges.
	SessionCap int
	// SnapshotThreshold compacts the log once more than this many applied
	// entries are retained (default 1024; requires Snapshot/Restore).
	SnapshotThreshold int
	// Snapshot captures the applied object's state for log compaction and
	// rejoin catch-up; Restore rebuilds it. Both are invoked only from the
	// apply loop. Leaving them nil disables compaction: catch-up then
	// replays the full log, which is correct but unbounded.
	Snapshot func() ([]byte, error)
	Restore  func([]byte) error
	// Sequencer, when non-nil, receives a Point callback as each commit is
	// about to be applied (core.SeqMgrExecute with the group name and log
	// index) — the deterministic-schedule hook the conformance harness
	// uses to drive failover interleavings. ReadIndex reads emit
	// core.SeqMgrStart between quorum confirmation and local serve, the
	// window the leader-kill-during-read schedule targets.
	Sequencer core.Sequencer
	// ReadOnly, when non-nil, classifies entries that never mutate object
	// state (a registry Get, a counter read). Read-only calls on the
	// leader skip the log entirely: the ReadIndex fast path captures
	// commitIndex, confirms leadership with one quorum round, waits for
	// the local apply frontier, and serves from leader state — no append,
	// no fsync, no per-read replication (docs/REPLICATION.md §9). Nil
	// routes every call through the log (the pre-PR 9 behaviour).
	ReadOnly func(entry string) bool
	// CombineWindow bounds how many concurrent proposals one combining
	// round may carry into a single append+sync+replicate cycle
	// (default 64). FIFO submission order is preserved.
	CombineWindow int
	// PipelineWindow bounds AppendEntries frames in flight per peer
	// (default 4): follower RTT, leader fsync and frame encode overlap
	// instead of serializing. 1 reproduces stop-and-wait.
	PipelineWindow int
	// Metrics, when non-nil, accumulates the replication counters
	// (rpc.Metrics.Repl*): combining ratio, batch sizes, pipeline window
	// occupancy, ReadIndex rounds.
	Metrics *rpc.Metrics
	// Logf, when non-nil, receives debug lines (role changes, elections).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.ElectionTimeout / 10
		if c.Heartbeat <= 0 {
			c.Heartbeat = time.Millisecond
		}
	}
	if c.SessionCap <= 0 {
		c.SessionCap = 1024
	}
	if c.SnapshotThreshold <= 0 {
		c.SnapshotThreshold = 1024
	}
	if c.CombineWindow <= 0 {
		c.CombineWindow = maxBatch
	}
	if c.PipelineWindow <= 0 {
		c.PipelineWindow = 4
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
}

// entry is one replicated log record. A zero Entry name is the no-op
// barrier a fresh leader appends to commit its predecessors' entries
// (Raft's "no commit of prior-term entries by counting" rule).
type entry struct {
	Term   uint64
	Entry  string
	Client string
	Seq    uint64
	Params []any
}

// result is a resolved proposal.
type result struct {
	results []any
	err     error
}

// waiter parks one client call until its log entry applies (or dies).
type waiter struct {
	term uint64 // proposal term: a truncated entry fails its waiters
	ch   chan result
}

// proposal is one client call parked in the leader's combining queue: the
// first proposer to find the queue idle becomes the combiner and drains
// bounded windows of its peers' proposals into single append+sync+
// replicate rounds — the PR 7 combining-write-queue pattern one layer up
// (and the paper's C5 request combining applied to consensus itself).
type proposal struct {
	entry  string
	client string
	seq    uint64
	params []any
	ch     chan result
}

// readWait parks one ReadIndex read until a quorum has acknowledged a
// confirmation round issued at or after the read registered.
type readWait struct {
	confirm uint64 // round this read needs acknowledged
	ch      chan error
}

// Replica is one member of a replication group. It implements the node's
// serve surfaces: rpc.Callable for plain calls and the session-aware
// CallSession for deduplicated ones; Publish registers both plus the
// consensus control endpoint.
type Replica struct {
	cfg Config
	obj rpc.Callable

	mu       sync.Mutex
	role     Role
	term     uint64
	votedFor string
	leaderID string

	// log[i] holds index snapIndex+1+i; everything at or below snapIndex
	// lives only in the snapshot.
	log       []entry
	snapIndex uint64
	snapTerm  uint64
	snapBlob  []byte

	commitIndex uint64
	applied     uint64
	pendingSnap *snapshotPayload // installed by the apply loop

	peers []*peer

	waiters map[uint64][]waiter

	// ReadIndex state (leader side): barrierIdx is the accession barrier —
	// reads bounce until it commits, because a fresh leader's commitIndex
	// may predate entries its predecessor committed. confirmSeq numbers
	// quorum confirmation rounds; reads park until their round is acked,
	// readApply until the local apply frontier reaches their index.
	barrierIdx uint64
	confirmSeq uint64
	reads      []*readWait
	readApply  map[uint64][]chan struct{}

	sessions *rpc.SessionTable

	// Proposal combining queue (its own lock: enqueueing must not contend
	// with the consensus state the combiner holds r.mu to mutate).
	propMu    sync.Mutex
	propQ     []proposal
	combining bool

	electionDeadline time.Time
	rng              *workload.RNG

	applyCond *sync.Cond
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// New creates (and starts) a group member applying committed calls to
// obj. The member recovers its durable consensus state from cfg.Store
// before contacting any peer, then runs as a follower until elections say
// otherwise.
func New(cfg Config, obj rpc.Callable) (*Replica, error) {
	cfg.withDefaults()
	if cfg.ID == "" || cfg.Group == "" {
		return nil, errors.New("replica: Config.ID and Config.Group are required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("replica: %s is not in Peers", cfg.ID)
	}
	r := &Replica{
		cfg:       cfg,
		obj:       obj,
		waiters:   make(map[uint64][]waiter),
		readApply: make(map[uint64][]chan struct{}),
		sessions:  rpc.NewSessionTable(cfg.SessionCap),
		rng:       workload.NewRNG(cfg.Seed ^ idHash(cfg.ID)),
		done:      make(chan struct{}),
	}
	r.applyCond = sync.NewCond(&r.mu)
	for id, addr := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		r.peers = append(r.peers, newPeer(r, id, addr))
	}
	sort.Slice(r.peers, func(i, j int) bool { return r.peers[i].id < r.peers[j].id })
	if err := r.recover(); err != nil {
		return nil, err
	}
	r.resetElectionDeadline()
	r.wg.Add(2)
	go r.run()
	go r.applyLoop()
	for _, p := range r.peers {
		r.wg.Add(1)
		go p.loop()
	}
	return r, nil
}

// Publish registers the replica's serve surfaces on its node: the
// replicated object under the group name and the consensus endpoint under
// ControlName(group).
func (r *Replica) Publish(n *rpc.Node) error {
	if err := n.PublishCallable(r.cfg.Group, r); err != nil {
		return err
	}
	return n.PublishCallable(ControlName(r.cfg.Group), &control{r: r})
}

// Role reports the member's current role and term (diagnostics).
func (r *Replica) Status() (Role, uint64, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role, r.term, r.leaderID
}

// Applied reports how many log entries this member has applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Sessions exposes the replicated session table (tests and diagnostics).
func (r *Replica) Sessions() *rpc.SessionTable { return r.sessions }

// CallCtx implements rpc.Callable: a call with no at-most-once identity.
// It commits through the log like any other call but records no session.
func (r *Replica) CallCtx(ctx context.Context, entryName string, params ...any) ([]any, error) {
	return r.CallSession(ctx, "", 0, entryName, params)
}

// CallSession is the session-aware serve surface the rpc layer dispatches
// to: propose the call, wait for quorum commit and local apply, return the
// applied result. A retry of an already-committed (client, seq) — the
// failover case — short-circuits to the replicated session table.
// Read-only entries (Config.ReadOnly) take the ReadIndex fast path and
// never touch the log; everything else enters the combining queue, where
// concurrent proposals coalesce into one append+sync+replicate round.
func (r *Replica) CallSession(ctx context.Context, client string, seq uint64, entryName string, params []any) ([]any, error) {
	if client != "" {
		if res, err, ok := r.sessions.Lookup(client, seq); ok {
			return res, err
		}
	}
	if ro := r.cfg.ReadOnly; ro != nil && ro(entryName) {
		return r.readCall(ctx, entryName, params)
	}
	p := proposal{entry: entryName, client: client, seq: seq, params: params, ch: make(chan result, 1)}
	r.propMu.Lock()
	r.propQ = append(r.propQ, p)
	if r.combining {
		r.propMu.Unlock()
	} else {
		// First proposer in becomes the combiner; it drains the queue —
		// including proposals that arrive while it works — before retiring,
		// so nothing is ever left parked without a drainer.
		r.combining = true
		r.propMu.Unlock()
		r.combineRounds()
	}

	select {
	case res := <-p.ch:
		return res.results, res.err
	case <-ctx.Done():
		// The proposal stays in the log; if it commits, the session table
		// remembers it and the client's retry replays the result.
		return nil, ctx.Err()
	case <-r.done:
		return nil, ErrClosed
	}
}

// combineRounds drains the proposal queue in bounded windows until it is
// empty, then hands the combiner role back. Runs on the first proposer's
// goroutine — the combined round's latency is the round the proposer was
// paying anyway, minus everyone else's.
func (r *Replica) combineRounds() {
	var batch []proposal
	for {
		r.propMu.Lock()
		n := len(r.propQ)
		if n == 0 {
			r.combining = false
			r.propMu.Unlock()
			return
		}
		if n > r.cfg.CombineWindow {
			n = r.cfg.CombineWindow
		}
		batch = append(batch[:0], r.propQ[:n]...)
		rest := copy(r.propQ, r.propQ[n:])
		for i := rest; i < len(r.propQ); i++ {
			r.propQ[i] = proposal{} // drop references for GC
		}
		r.propQ = r.propQ[:rest]
		r.propMu.Unlock()
		r.commitRound(batch)
	}
}

// commitRound appends one window of combined proposals: one r.mu hold for
// all the appends, ONE journal sync, one replication kick — the per-round
// costs PR 8 paid per call, now amortized across the window.
func (r *Replica) commitRound(batch []proposal) {
	if m := r.cfg.Metrics; m != nil {
		m.ReplProposals.Add(uint64(len(batch)))
		if len(batch) > 1 {
			m.ReplCombined.Add(uint64(len(batch) - 1))
		}
		m.ReplRounds.Inc()
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		failProposals(batch, ErrClosed)
		return
	}
	if r.role != Leader {
		leader := r.leaderID
		id := r.cfg.ID
		r.mu.Unlock()
		if leader != "" {
			failProposals(batch, fmt.Errorf("%s: try %s: %w", id, leader, wire.ErrNotLeader))
		} else {
			failProposals(batch, fmt.Errorf("%s: no leader elected: %w", id, wire.ErrNotLeader))
		}
		return
	}
	term := r.term
	first := r.lastIndex() + 1
	for i := range batch {
		e := entry{Term: term, Entry: batch[i].entry, Client: batch[i].client, Seq: batch[i].seq, Params: batch[i].params}
		idx := r.appendLocalLocked(e)
		r.waiters[idx] = append(r.waiters[idx], waiter{term: term, ch: batch[i].ch})
	}
	last := r.lastIndex()
	lsn := r.persistAppendsLocked(first, r.log[first-r.snapIndex-1:])
	r.mu.Unlock()

	if err := r.waitSynced(lsn); err != nil {
		// The entries stay in the log and may yet commit; pull the waiters
		// out first so a later apply cannot double-resolve them, then fail
		// the callers — their retries hit the session table if the entries
		// do land.
		r.mu.Lock()
		for idx := first; idx <= last; idx++ {
			delete(r.waiters, idx)
		}
		r.mu.Unlock()
		failProposals(batch, fmt.Errorf("replica %s: journal: %w", r.cfg.ID, err))
		return
	}
	r.kickPeers()
	r.maybeAdvanceCommit()
}

func failProposals(batch []proposal, err error) {
	for i := range batch {
		batch[i].ch <- result{err: err}
	}
}

// readCall is the ReadIndex fast path: capture the commit frontier,
// confirm we are still the leader with one quorum round (piggybacked on
// in-flight AppendEntries when traffic is moving, a lightweight Heartbeat
// frame when not), wait for the local apply frontier to reach the
// captured index, and serve from local state — no log append, no fsync,
// no per-read replication. Failures are typed retryable (wire.ErrNotLeader)
// so DialMulti clients bounce exactly as they do for writes.
func (r *Replica) readCall(ctx context.Context, entryName string, params []any) ([]any, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.role != Leader {
		leader := r.leaderID
		r.mu.Unlock()
		if leader != "" {
			return nil, fmt.Errorf("%s: try %s: %w", r.cfg.ID, leader, wire.ErrNotLeader)
		}
		return nil, fmt.Errorf("%s: no leader elected: %w", r.cfg.ID, wire.ErrNotLeader)
	}
	if r.commitIndex < r.barrierIdx {
		// Fresh leadership: until the accession barrier commits, our
		// commitIndex may predate entries a predecessor committed, so a
		// read here could miss acknowledged writes. Bounce retryable.
		r.mu.Unlock()
		if m := r.cfg.Metrics; m != nil {
			m.ReplReadRetries.Inc()
		}
		return nil, fmt.Errorf("%s: accession barrier uncommitted: %w", r.cfg.ID, wire.ErrNotLeader)
	}
	readIndex := r.commitIndex
	var confirm chan error
	if len(r.peers) > 0 {
		r.confirmSeq++
		rw := &readWait{confirm: r.confirmSeq, ch: make(chan error, 1)}
		r.reads = append(r.reads, rw)
		confirm = rw.ch
	}
	r.mu.Unlock()

	if confirm != nil {
		if m := r.cfg.Metrics; m != nil {
			m.ReplReadRounds.Inc()
		}
		r.kickPeers()
		select {
		case err := <-confirm:
			if err != nil {
				if m := r.cfg.Metrics; m != nil {
					m.ReplReadRetries.Inc()
				}
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-r.done:
			return nil, ErrClosed
		}
	}
	if err := r.awaitApplied(ctx, readIndex); err != nil {
		return nil, err
	}
	if s := r.cfg.Sequencer; s != nil {
		// The confirmed-but-not-yet-served window: the conformance
		// leader-kill schedule injects its crash here.
		s.Point(core.SeqMgrStart, r.cfg.Group, entryName, readIndex)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.mu.Unlock()
	if m := r.cfg.Metrics; m != nil {
		m.ReplReads.Inc()
	}
	return r.obj.CallCtx(ctx, entryName, params...)
}

// awaitApplied parks until the apply frontier reaches idx (the apply loop
// closes the channel) — the "wait for applied ≥ readIndex" leg of
// ReadIndex.
func (r *Replica) awaitApplied(ctx context.Context, idx uint64) error {
	r.mu.Lock()
	if r.applied >= idx {
		r.mu.Unlock()
		return nil
	}
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	ch := make(chan struct{})
	r.readApply[idx] = append(r.readApply[idx], ch)
	r.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-r.done:
		return ErrClosed
	}
}

// advanceReads resolves parked reads whose confirmation round a quorum of
// the group has acknowledged. Called from peer ack handlers whenever a
// peer's acked round advances.
func (r *Replica) advanceReads() {
	r.mu.Lock()
	if len(r.reads) == 0 || r.role != Leader {
		r.mu.Unlock()
		return
	}
	confs := make([]uint64, 0, len(r.peers))
	for _, p := range r.peers {
		p.mu.Lock()
		confs = append(confs, p.confirmed)
		p.mu.Unlock()
	}
	// Descending insertion sort; with self as a free ack, the quorum-th
	// member's round is the (need-1)-th highest peer ack.
	for i := 1; i < len(confs); i++ {
		for j := i; j > 0 && confs[j] > confs[j-1]; j-- {
			confs[j], confs[j-1] = confs[j-1], confs[j]
		}
	}
	need := (len(r.peers)+1)/2 + 1
	acked := confs[need-2]
	kept := r.reads[:0]
	var resolved []*readWait
	for _, rw := range r.reads {
		if rw.confirm <= acked {
			resolved = append(resolved, rw)
		} else {
			kept = append(kept, rw)
		}
	}
	for i := len(kept); i < len(r.reads); i++ {
		r.reads[i] = nil
	}
	r.reads = kept
	r.mu.Unlock()
	for _, rw := range resolved {
		rw.ch <- nil
	}
}

// failReadsLocked fails every parked read — leadership is gone (or the
// member is closing), so their confirmation rounds can never complete.
// r.mu held.
func (r *Replica) failReadsLocked(err error) {
	for _, rw := range r.reads {
		rw.ch <- fmt.Errorf("%s: read abandoned: %w", r.cfg.ID, err)
	}
	r.reads = nil
}

// resolveReadApplyLocked releases reads waiting on the apply frontier;
// r.mu held, called by the apply loop after advancing r.applied.
func (r *Replica) resolveReadApplyLocked() {
	for idx, chs := range r.readApply {
		if idx <= r.applied {
			delete(r.readApply, idx)
			for _, ch := range chs {
				close(ch)
			}
		}
	}
}

// applyBatch bounds how many committed entries one apply-loop drain
// executes between lock holds — big enough to amortize the lock traffic,
// small enough that snapshot installs and Close stay responsive.
const applyBatch = 256

// applyLoop is the replicated state machine: commits are executed against
// the live object strictly in log order, on one goroutine — log order IS
// execution order, on every member, which is what carries per-key FIFO
// across a failover. The loop drains committed runs in batches: one lock
// hold to collect the run, one to advance the frontier and gather every
// resolved waiter, instead of two lock round-trips per entry.
func (r *Replica) applyLoop() {
	defer r.wg.Done()
	var todo []entry
	var resBuf []result
	for {
		r.mu.Lock()
		for r.applied >= r.commitIndex && r.pendingSnap == nil && !r.closed {
			r.applyCond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		if snap := r.pendingSnap; snap != nil {
			r.pendingSnap = nil
			r.mu.Unlock()
			r.installSnapshot(snap)
			continue
		}
		start := r.applied + 1
		end := r.commitIndex
		if end-start >= applyBatch {
			end = start + applyBatch - 1
		}
		todo = todo[:0]
		for idx := start; idx <= end; idx++ {
			e, ok := r.entryAt(idx)
			if !ok {
				// Compacted away under us (snapshot install raced); stop the
				// run and let the pendingSnap branch catch up.
				break
			}
			todo = append(todo, e)
		}
		r.mu.Unlock()
		if len(todo) == 0 {
			continue
		}

		resBuf = resBuf[:0]
		for i := range todo {
			e := &todo[i]
			idx := start + uint64(i)
			if s := r.cfg.Sequencer; s != nil {
				s.Point(core.SeqMgrExecute, r.cfg.Group, e.Entry, idx)
			}
			var res result
			switch {
			case e.Entry == "":
				// No-op barrier: commits the term, resolves nothing but the
				// waiters' ordering guarantees.
			case e.Client != "":
				if results, err, ok := r.sessions.Lookup(e.Client, e.Seq); ok {
					// The same logical call was committed twice — a failover
					// re-propose whose first copy also survived. Apply-time
					// dedup is what "the dedup cache doubles as the session
					// table" buys: replay, never re-execute.
					res = result{results: results, err: err}
				} else {
					results, err := r.obj.CallCtx(context.Background(), e.Entry, e.Params...)
					r.sessions.Record(e.Client, e.Seq, results, err)
					res = result{results: results, err: err}
				}
			default:
				results, err := r.obj.CallCtx(context.Background(), e.Entry, e.Params...)
				res = result{results: results, err: err}
			}
			resBuf = append(resBuf, res)
		}

		r.mu.Lock()
		r.applied = start + uint64(len(todo)) - 1
		var resolved []waiter
		var resolvedRes []result
		for i := range todo {
			idx := start + uint64(i)
			if ws, ok := r.waiters[idx]; ok {
				delete(r.waiters, idx)
				for _, w := range ws {
					resolved = append(resolved, w)
					resolvedRes = append(resolvedRes, resBuf[i])
				}
			}
		}
		r.resolveReadApplyLocked()
		compact := r.cfg.Snapshot != nil && r.applied-r.snapIndex > uint64(r.cfg.SnapshotThreshold)
		r.mu.Unlock()
		for i, w := range resolved {
			w.ch <- resolvedRes[i]
		}
		if compact {
			r.compact()
		}
	}
}

// installSnapshot restores object state and sessions from a leader
// snapshot — the catch-up path of a member that fell behind a compaction.
// Runs on the apply loop so it can never race an entry execution.
func (r *Replica) installSnapshot(snap *snapshotPayload) {
	if r.cfg.Restore != nil {
		if err := r.cfg.Restore(snap.State); err != nil {
			r.logf("restore snapshot@%d: %v", snap.LastIndex, err)
			return
		}
	}
	r.sessions.Load(snap.Sessions)
	r.mu.Lock()
	if snap.LastIndex > r.applied {
		r.applied = snap.LastIndex
	}
	r.mu.Unlock()
	r.logf("installed snapshot through index %d (term %d)", snap.LastIndex, snap.LastTerm)
}

// compact takes a state snapshot at the applied frontier and drops the log
// prefix it covers. The blob is retained for InstallSnapshot catch-up of
// stragglers and journaled so recovery starts from it.
func (r *Replica) compact() {
	state, err := r.cfg.Snapshot()
	if err != nil {
		r.logf("snapshot: %v", err)
		return
	}
	sessions := r.sessions.Dump()
	r.mu.Lock()
	// The apply loop is the only mutator of applied, so the state captured
	// above is exactly the state at r.applied.
	last := r.applied
	if last <= r.snapIndex {
		r.mu.Unlock()
		return
	}
	lastTerm, _ := r.termAt(last)
	blob, err := encodeSnapshot(&snapshotPayload{
		LastIndex: last, LastTerm: lastTerm, State: state, Sessions: sessions,
	})
	if err != nil {
		r.mu.Unlock()
		r.logf("encode snapshot: %v", err)
		return
	}
	r.log = append([]entry(nil), r.log[last-r.snapIndex:]...)
	r.snapIndex, r.snapTerm, r.snapBlob = last, lastTerm, blob
	lsn := r.persistSnapshotLocked(last, lastTerm, blob)
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("snapshot sync: %v", err)
	}
	r.logf("compacted log through index %d", last)
}

// Close stops the member: waiters fail, peers disconnect, goroutines
// drain. The underlying object is not touched — it belongs to the caller.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	ws := r.waiters
	r.waiters = make(map[uint64][]waiter)
	r.failReadsLocked(ErrClosed)
	r.mu.Unlock()
	close(r.done)
	r.applyCond.Broadcast()
	for _, list := range ws {
		for _, w := range list {
			w.ch <- result{err: ErrClosed}
		}
	}
	for _, p := range r.peers {
		p.close()
	}
	r.wg.Wait()
}

// --- log helpers (r.mu held) ---

func (r *Replica) lastIndex() uint64 { return r.snapIndex + uint64(len(r.log)) }

// termAt returns the term of the entry at idx; ok is false when idx is
// compacted below the snapshot floor (and not the floor itself).
func (r *Replica) termAt(idx uint64) (uint64, bool) {
	switch {
	case idx == r.snapIndex:
		return r.snapTerm, true
	case idx < r.snapIndex || idx > r.lastIndex():
		return 0, false
	default:
		return r.log[idx-r.snapIndex-1].Term, true
	}
}

func (r *Replica) entryAt(idx uint64) (entry, bool) {
	if idx <= r.snapIndex || idx > r.lastIndex() {
		return entry{}, false
	}
	return r.log[idx-r.snapIndex-1], true
}

func (r *Replica) appendLocalLocked(e entry) uint64 {
	r.log = append(r.log, e)
	return r.lastIndex()
}

// truncateFromLocked drops log entries at and above idx (a conflict with
// the leader's log) and fails their waiters: those proposals are
// definitively not committing under this lineage. Clients retry with the
// same seq; if the entry somehow committed on the other lineage first,
// the session table replays it.
func (r *Replica) truncateFromLocked(idx uint64) {
	if idx > r.lastIndex() {
		return
	}
	r.log = r.log[:idx-r.snapIndex-1]
	for wIdx, list := range r.waiters {
		if wIdx < idx {
			continue
		}
		delete(r.waiters, wIdx)
		for _, w := range list {
			w.ch <- result{err: fmt.Errorf("%s: proposal at %d overwritten: %w", r.cfg.ID, wIdx, wire.ErrNotLeader)}
		}
	}
}

// logf is lock-free (callers may hold r.mu).
func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("replica "+r.cfg.ID+": "+format, args...)
	}
}

func idHash(id string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
