// Package replica makes an ALPS object survive the death of its host: a
// Raft-style replicated log carries the object's call ledger — entry name,
// parameters, and the caller's (client, seq) at-most-once identity —
// across 3+ rpc.Nodes, so when the leader is killed mid-traffic a new
// leader finishes the group's work with the paper's managed-object
// semantics intact (docs/REPLICATION.md).
//
// The design reuses the substrate the earlier PRs built instead of
// inventing a parallel one:
//
//   - Consensus messages are ordinary wire.Frame requests on the pipelined
//     rpc transport, addressed to a control endpoint the node publishes
//     under ControlName(group) — no second codec, no second connection
//     pool, and the coalescing write path batches consensus and client
//     traffic together.
//   - The (client, seq) dedup cache of PR 1 doubles as the client-session
//     table (rpc.SessionTable): every member records each committed call's
//     response at apply time, in log order, so a call retried against a
//     NEW leader after a failover replays the recorded response instead of
//     re-executing the entry body — exactly-once across the failover.
//   - Each member's consensus state (term, vote, log, snapshot floors) is
//     durable through the same wal.Store that journals objects and acks
//     (wal.KindReplica records), so a kill -9'd member recovers its
//     promises before rejoining.
//
// Scheduling note: commits are applied to the live object SEQUENTIALLY, in
// log order, which is what makes per-key FIFO trivial across a failover.
// The flip side is that a blocking guarded entry would stall the whole
// group's apply loop; replicate non-blocking entries (guards that shed or
// fail instead of parking) — see docs/REPLICATION.md §limits.
package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ControlName returns the published name of a group's consensus endpoint
// on each member node. The "!" prefix keeps it out of the object
// namespace users see.
func ControlName(group string) string { return "!raft:" + group }

// ErrClosed is returned by calls on a closed replica.
var ErrClosed = errors.New("replica: closed")

// Role is a member's current consensus role.
type Role int

const (
	Follower Role = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Config describes one member of a replication group.
type Config struct {
	// ID is this member's name; it must be a key of Peers.
	ID string
	// Group is the replicated object's published name; the consensus
	// endpoint rides under ControlName(Group).
	Group string
	// Peers maps member ID → node address for the whole group, self
	// included. Membership is static for the group's lifetime; a restarted
	// member rejoins under its old ID at the same address.
	Peers map[string]string
	// Dial opens a transport to a peer address. Defaults to TCP with a 2s
	// timeout; tests inject simnet dials here.
	Dial func(addr string) (net.Conn, error)
	// Store, when non-nil, makes this member's consensus state durable:
	// term and vote are synced before they are acted on, log entries
	// before they are acknowledged — the same ack-before-response
	// discipline the rpc layer uses for client responses.
	Store *wal.Store
	// ElectionTimeout is the base follower patience; an election fires
	// after a seeded-random duration in [T, 2T) without leader contact
	// (default 150ms). Heartbeats default to T/10.
	ElectionTimeout time.Duration
	Heartbeat       time.Duration
	// Seed drives the randomized election timeouts, XORed with the
	// member ID's hash so members draw distinct but reproducible
	// sequences — the knob that makes failover schedules replayable.
	Seed uint64
	// SessionCap bounds the replicated session table (default 1024). It
	// MUST be identical across the group or session eviction diverges.
	SessionCap int
	// SnapshotThreshold compacts the log once more than this many applied
	// entries are retained (default 1024; requires Snapshot/Restore).
	SnapshotThreshold int
	// Snapshot captures the applied object's state for log compaction and
	// rejoin catch-up; Restore rebuilds it. Both are invoked only from the
	// apply loop. Leaving them nil disables compaction: catch-up then
	// replays the full log, which is correct but unbounded.
	Snapshot func() ([]byte, error)
	Restore  func([]byte) error
	// Sequencer, when non-nil, receives a Point callback as each commit is
	// about to be applied (core.SeqMgrExecute with the group name and log
	// index) — the deterministic-schedule hook the conformance harness
	// uses to drive failover interleavings.
	Sequencer core.Sequencer
	// Logf, when non-nil, receives debug lines (role changes, elections).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.ElectionTimeout / 10
		if c.Heartbeat <= 0 {
			c.Heartbeat = time.Millisecond
		}
	}
	if c.SessionCap <= 0 {
		c.SessionCap = 1024
	}
	if c.SnapshotThreshold <= 0 {
		c.SnapshotThreshold = 1024
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
}

// entry is one replicated log record. A zero Entry name is the no-op
// barrier a fresh leader appends to commit its predecessors' entries
// (Raft's "no commit of prior-term entries by counting" rule).
type entry struct {
	Term   uint64
	Entry  string
	Client string
	Seq    uint64
	Params []any
}

// result is a resolved proposal.
type result struct {
	results []any
	err     error
}

// waiter parks one client call until its log entry applies (or dies).
type waiter struct {
	term uint64 // proposal term: a truncated entry fails its waiters
	ch   chan result
}

// Replica is one member of a replication group. It implements the node's
// serve surfaces: rpc.Callable for plain calls and the session-aware
// CallSession for deduplicated ones; Publish registers both plus the
// consensus control endpoint.
type Replica struct {
	cfg Config
	obj rpc.Callable

	mu       sync.Mutex
	role     Role
	term     uint64
	votedFor string
	leaderID string

	// log[i] holds index snapIndex+1+i; everything at or below snapIndex
	// lives only in the snapshot.
	log       []entry
	snapIndex uint64
	snapTerm  uint64
	snapBlob  []byte

	commitIndex uint64
	applied     uint64
	pendingSnap *snapshotPayload // installed by the apply loop

	peers []*peer

	waiters map[uint64][]waiter

	sessions *rpc.SessionTable

	electionDeadline time.Time
	rng              *workload.RNG

	applyCond *sync.Cond
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// New creates (and starts) a group member applying committed calls to
// obj. The member recovers its durable consensus state from cfg.Store
// before contacting any peer, then runs as a follower until elections say
// otherwise.
func New(cfg Config, obj rpc.Callable) (*Replica, error) {
	cfg.withDefaults()
	if cfg.ID == "" || cfg.Group == "" {
		return nil, errors.New("replica: Config.ID and Config.Group are required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("replica: %s is not in Peers", cfg.ID)
	}
	r := &Replica{
		cfg:      cfg,
		obj:      obj,
		waiters:  make(map[uint64][]waiter),
		sessions: rpc.NewSessionTable(cfg.SessionCap),
		rng:      workload.NewRNG(cfg.Seed ^ idHash(cfg.ID)),
		done:     make(chan struct{}),
	}
	r.applyCond = sync.NewCond(&r.mu)
	for id, addr := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		r.peers = append(r.peers, newPeer(r, id, addr))
	}
	sort.Slice(r.peers, func(i, j int) bool { return r.peers[i].id < r.peers[j].id })
	if err := r.recover(); err != nil {
		return nil, err
	}
	r.resetElectionDeadline()
	r.wg.Add(2)
	go r.run()
	go r.applyLoop()
	for _, p := range r.peers {
		r.wg.Add(1)
		go p.loop()
	}
	return r, nil
}

// Publish registers the replica's serve surfaces on its node: the
// replicated object under the group name and the consensus endpoint under
// ControlName(group).
func (r *Replica) Publish(n *rpc.Node) error {
	if err := n.PublishCallable(r.cfg.Group, r); err != nil {
		return err
	}
	return n.PublishCallable(ControlName(r.cfg.Group), &control{r: r})
}

// Role reports the member's current role and term (diagnostics).
func (r *Replica) Status() (Role, uint64, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role, r.term, r.leaderID
}

// Applied reports how many log entries this member has applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Sessions exposes the replicated session table (tests and diagnostics).
func (r *Replica) Sessions() *rpc.SessionTable { return r.sessions }

// CallCtx implements rpc.Callable: a call with no at-most-once identity.
// It commits through the log like any other call but records no session.
func (r *Replica) CallCtx(ctx context.Context, entryName string, params ...any) ([]any, error) {
	return r.CallSession(ctx, "", 0, entryName, params)
}

// CallSession is the session-aware serve surface the rpc layer dispatches
// to: propose the call, wait for quorum commit and local apply, return the
// applied result. A retry of an already-committed (client, seq) — the
// failover case — short-circuits to the replicated session table.
func (r *Replica) CallSession(ctx context.Context, client string, seq uint64, entryName string, params []any) ([]any, error) {
	if client != "" {
		if res, err, ok := r.sessions.Lookup(client, seq); ok {
			return res, err
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.role != Leader {
		leader := r.leaderID
		r.mu.Unlock()
		if leader != "" {
			return nil, fmt.Errorf("%s: try %s: %w", r.cfg.ID, leader, wire.ErrNotLeader)
		}
		return nil, fmt.Errorf("%s: no leader elected: %w", r.cfg.ID, wire.ErrNotLeader)
	}
	e := entry{Term: r.term, Entry: entryName, Client: client, Seq: seq, Params: params}
	idx := r.appendLocalLocked(e)
	w := waiter{term: e.Term, ch: make(chan result, 1)}
	r.waiters[idx] = append(r.waiters[idx], w)
	lsn := r.persistAppendLocked(idx, e)
	r.mu.Unlock()

	if err := r.waitSynced(lsn); err != nil {
		return nil, fmt.Errorf("replica %s: journal: %w", r.cfg.ID, err)
	}
	r.kickPeers()
	r.maybeAdvanceCommit()

	select {
	case res := <-w.ch:
		return res.results, res.err
	case <-ctx.Done():
		// The proposal stays in the log; if it commits, the session table
		// remembers it and the client's retry replays the result.
		return nil, ctx.Err()
	case <-r.done:
		return nil, ErrClosed
	}
}

// applyLoop is the replicated state machine: commits are executed against
// the live object strictly in log order, on one goroutine — log order IS
// execution order, on every member, which is what carries per-key FIFO
// across a failover.
func (r *Replica) applyLoop() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for r.applied >= r.commitIndex && r.pendingSnap == nil && !r.closed {
			r.applyCond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		if snap := r.pendingSnap; snap != nil {
			r.pendingSnap = nil
			r.mu.Unlock()
			r.installSnapshot(snap)
			continue
		}
		idx := r.applied + 1
		e, ok := r.entryAt(idx)
		if !ok {
			// The entry was compacted away under us (snapshot install
			// raced); loop and let the pendingSnap branch catch up.
			r.mu.Unlock()
			continue
		}
		r.mu.Unlock()

		if s := r.cfg.Sequencer; s != nil {
			s.Point(core.SeqMgrExecute, r.cfg.Group, e.Entry, idx)
		}
		var res result
		switch {
		case e.Entry == "":
			// No-op barrier: commits the term, resolves nothing but the
			// waiters' ordering guarantees.
		case e.Client != "":
			if results, err, ok := r.sessions.Lookup(e.Client, e.Seq); ok {
				// The same logical call was committed twice — a failover
				// re-propose whose first copy also survived. Apply-time
				// dedup is what "the dedup cache doubles as the session
				// table" buys: replay, never re-execute.
				res = result{results: results, err: err}
			} else {
				results, err := r.obj.CallCtx(context.Background(), e.Entry, e.Params...)
				r.sessions.Record(e.Client, e.Seq, results, err)
				res = result{results: results, err: err}
			}
		default:
			results, err := r.obj.CallCtx(context.Background(), e.Entry, e.Params...)
			res = result{results: results, err: err}
		}

		r.mu.Lock()
		r.applied = idx
		ws := r.waiters[idx]
		delete(r.waiters, idx)
		compact := r.cfg.Snapshot != nil && r.applied-r.snapIndex > uint64(r.cfg.SnapshotThreshold)
		r.mu.Unlock()
		for _, w := range ws {
			w.ch <- res
		}
		if compact {
			r.compact()
		}
	}
}

// installSnapshot restores object state and sessions from a leader
// snapshot — the catch-up path of a member that fell behind a compaction.
// Runs on the apply loop so it can never race an entry execution.
func (r *Replica) installSnapshot(snap *snapshotPayload) {
	if r.cfg.Restore != nil {
		if err := r.cfg.Restore(snap.State); err != nil {
			r.logf("restore snapshot@%d: %v", snap.LastIndex, err)
			return
		}
	}
	r.sessions.Load(snap.Sessions)
	r.mu.Lock()
	if snap.LastIndex > r.applied {
		r.applied = snap.LastIndex
	}
	r.mu.Unlock()
	r.logf("installed snapshot through index %d (term %d)", snap.LastIndex, snap.LastTerm)
}

// compact takes a state snapshot at the applied frontier and drops the log
// prefix it covers. The blob is retained for InstallSnapshot catch-up of
// stragglers and journaled so recovery starts from it.
func (r *Replica) compact() {
	state, err := r.cfg.Snapshot()
	if err != nil {
		r.logf("snapshot: %v", err)
		return
	}
	sessions := r.sessions.Dump()
	r.mu.Lock()
	// The apply loop is the only mutator of applied, so the state captured
	// above is exactly the state at r.applied.
	last := r.applied
	if last <= r.snapIndex {
		r.mu.Unlock()
		return
	}
	lastTerm, _ := r.termAt(last)
	blob, err := encodeSnapshot(&snapshotPayload{
		LastIndex: last, LastTerm: lastTerm, State: state, Sessions: sessions,
	})
	if err != nil {
		r.mu.Unlock()
		r.logf("encode snapshot: %v", err)
		return
	}
	r.log = append([]entry(nil), r.log[last-r.snapIndex:]...)
	r.snapIndex, r.snapTerm, r.snapBlob = last, lastTerm, blob
	lsn := r.persistSnapshotLocked(last, lastTerm, blob)
	r.mu.Unlock()
	if err := r.waitSynced(lsn); err != nil {
		r.logf("snapshot sync: %v", err)
	}
	r.logf("compacted log through index %d", last)
}

// Close stops the member: waiters fail, peers disconnect, goroutines
// drain. The underlying object is not touched — it belongs to the caller.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	ws := r.waiters
	r.waiters = make(map[uint64][]waiter)
	r.mu.Unlock()
	close(r.done)
	r.applyCond.Broadcast()
	for _, list := range ws {
		for _, w := range list {
			w.ch <- result{err: ErrClosed}
		}
	}
	for _, p := range r.peers {
		p.close()
	}
	r.wg.Wait()
}

// --- log helpers (r.mu held) ---

func (r *Replica) lastIndex() uint64 { return r.snapIndex + uint64(len(r.log)) }

// termAt returns the term of the entry at idx; ok is false when idx is
// compacted below the snapshot floor (and not the floor itself).
func (r *Replica) termAt(idx uint64) (uint64, bool) {
	switch {
	case idx == r.snapIndex:
		return r.snapTerm, true
	case idx < r.snapIndex || idx > r.lastIndex():
		return 0, false
	default:
		return r.log[idx-r.snapIndex-1].Term, true
	}
}

func (r *Replica) entryAt(idx uint64) (entry, bool) {
	if idx <= r.snapIndex || idx > r.lastIndex() {
		return entry{}, false
	}
	return r.log[idx-r.snapIndex-1], true
}

func (r *Replica) appendLocalLocked(e entry) uint64 {
	r.log = append(r.log, e)
	return r.lastIndex()
}

// truncateFromLocked drops log entries at and above idx (a conflict with
// the leader's log) and fails their waiters: those proposals are
// definitively not committing under this lineage. Clients retry with the
// same seq; if the entry somehow committed on the other lineage first,
// the session table replays it.
func (r *Replica) truncateFromLocked(idx uint64) {
	if idx > r.lastIndex() {
		return
	}
	r.log = r.log[:idx-r.snapIndex-1]
	for wIdx, list := range r.waiters {
		if wIdx < idx {
			continue
		}
		delete(r.waiters, wIdx)
		for _, w := range list {
			w.ch <- result{err: fmt.Errorf("%s: proposal at %d overwritten: %w", r.cfg.ID, wIdx, wire.ErrNotLeader)}
		}
	}
}

// logf is lock-free (callers may hold r.mu).
func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("replica "+r.cfg.ID+": "+format, args...)
	}
}

func idHash(id string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
