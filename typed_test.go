package alps_test

import (
	"errors"
	"testing"

	alps "repro"
)

func newCalc(t *testing.T) *alps.Object {
	t.Helper()
	obj, err := alps.New("Calc",
		alps.WithEntry(alps.EntrySpec{Name: "Add", Params: 2, Results: 1,
			Body: func(inv *alps.Invocation) error {
				a, err := alps.Param[int](inv, 0)
				if err != nil {
					return err
				}
				b, err := alps.Param[int](inv, 1)
				if err != nil {
					return err
				}
				inv.Return(a + b)
				return nil
			}}),
		alps.WithEntry(alps.EntrySpec{Name: "DivMod", Params: 2, Results: 2,
			Body: func(inv *alps.Invocation) error {
				a := inv.Param(0).(int)
				b := inv.Param(1).(int)
				if b == 0 {
					return errors.New("division by zero")
				}
				inv.Return(a/b, a%b)
				return nil
			}}),
		alps.WithEntry(alps.EntrySpec{Name: "Noop", Params: 0, Results: 0,
			Body: func(inv *alps.Invocation) error { return nil }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestCall1(t *testing.T) {
	obj := newCalc(t)
	defer obj.Close()
	sum, err := alps.Call1[int](obj, "Add", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("Add = %d", sum)
	}
	// Wrong type parameter: descriptive error, no panic.
	if _, err := alps.Call1[string](obj, "Add", 2, 3); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("type mismatch err = %v", err)
	}
	// Wrong result count.
	if _, err := alps.Call1[int](obj, "DivMod", 7, 2); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("result count err = %v", err)
	}
	// Body error propagates.
	if _, err := alps.Call1[int](obj, "Add", "x", 3); err == nil {
		t.Fatal("bad param type did not fail the call")
	}
}

func TestCall2(t *testing.T) {
	obj := newCalc(t)
	defer obj.Close()
	q, r, err := alps.Call2[int, int](obj, "DivMod", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 || r != 1 {
		t.Fatalf("DivMod = %d, %d", q, r)
	}
	if _, _, err := alps.Call2[int, string](obj, "DivMod", 7, 2); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("second result type mismatch err = %v", err)
	}
	if _, _, err := alps.Call2[int, int](obj, "Add", 1, 2); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("result count err = %v", err)
	}
	if _, _, err := alps.Call2[int, int](obj, "DivMod", 7, 0); err == nil || errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("body error lost: %v", err)
	}
}

func TestCall0(t *testing.T) {
	obj := newCalc(t)
	defer obj.Close()
	if err := alps.Call0(obj, "Noop"); err != nil {
		t.Fatal(err)
	}
	if err := alps.Call0(obj, "Add", 1, 2); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("Call0 on 1-result entry: %v", err)
	}
}

func TestAs(t *testing.T) {
	v, err := alps.As[int](42)
	if err != nil || v != 42 {
		t.Fatalf("As[int] = %d, %v", v, err)
	}
	if _, err := alps.As[string](42); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("As mismatch err = %v", err)
	}
}

func TestParamHelpers(t *testing.T) {
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, HiddenParams: 1,
			Body: func(inv *alps.Invocation) error {
				// Out-of-range and mismatch cases.
				if _, err := alps.Param[int](inv, 5); !errors.Is(err, alps.ErrBadArity) {
					return errors.New("out-of-range param not rejected")
				}
				if _, err := alps.Hidden[string](inv, 0); !errors.Is(err, alps.ErrBadArity) {
					return errors.New("hidden type mismatch not rejected")
				}
				h, err := alps.Hidden[int](inv, 0)
				if err != nil {
					return err
				}
				if _, err := alps.Hidden[int](inv, 9); !errors.Is(err, alps.ErrBadArity) {
					return errors.New("out-of-range hidden not rejected")
				}
				p, err := alps.Param[string](inv, 0)
				if err != nil {
					return err
				}
				inv.Return(p + "!")
				_ = h
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.Start(a, 7); err != nil {
					return
				}
				aw, err := m.AwaitCall(a)
				if err != nil {
					return
				}
				if err := m.Finish(aw); err != nil {
					return
				}
			}
		}, alps.Intercept("P")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	got, err := alps.Call1[string](obj, "P", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hi!" {
		t.Fatalf("P = %q", got)
	}
}

func TestRecv1(t *testing.T) {
	c := alps.NewChan("t")
	if err := c.Send(42); err != nil {
		t.Fatal(err)
	}
	v, ok, err := alps.Recv1[int](c)
	if err != nil || !ok || v != 42 {
		t.Fatalf("Recv1 = %d, %v, %v", v, ok, err)
	}
	if err := c.Send(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := alps.Recv1[int](c); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("wide message err = %v", err)
	}
	c.Close()
	if _, ok, err := alps.Recv1[int](c); ok || err != nil {
		t.Fatalf("closed channel Recv1 = %v, %v", ok, err)
	}
}
