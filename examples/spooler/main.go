// Printer spooler (§2.8.1): the manager allocates a free printer to each
// accepted print request and supplies the printer number to the Print
// procedure as a *hidden parameter*; the procedure returns it as a *hidden
// result*, so the manager needs no allocation bookkeeping. Callers never
// see printers at all — they just call Print.
//
//	go run ./examples/spooler
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	alps "repro"
	"repro/internal/objects/spooler"
)

func main() {
	var mu sync.Mutex
	s, err := spooler.New(spooler.Config{
		Printers: 3,
		PrintMax: 9,
		PageCost: 2 * time.Millisecond,
		Print: func(printer int, file string, pages int) {
			mu.Lock()
			fmt.Printf("printer %d: %s (%d pages)\n", printer, file, pages)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	alps.ParFor(1, 12, func(i int) {
		file := fmt.Sprintf("doc-%02d.ps", i)
		printer, err := s.Print(file, i%5+1)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		fmt.Printf("  %s done on printer %d\n", file, printer)
		mu.Unlock()
	})

	jobs, perPrinter, violations := s.Stats()
	fmt.Printf("\n%d jobs, per-printer %v, violations %d\n", jobs, perPrinter, violations)
}
