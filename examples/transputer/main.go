// A miniature of the paper's target platform (§4): several nodes connected
// by links with real latency — here the in-memory simulated network — each
// hosting a shard of a dictionary. A client scatters a query batch across
// the shards in parallel (the par statement) and gathers the answers.
//
//	go run ./examples/transputer
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/objects/dict"
	"repro/internal/rpc"
	"repro/internal/simnet"
)

func main() {
	const shards = 4
	network := simnet.New(simnet.Config{Latency: 300 * time.Microsecond})

	// Bring up the shard nodes.
	type shard struct {
		d    *dict.Dict
		node *rpc.Node
		rem  *rpc.Remote
	}
	farm := make([]*shard, shards)
	for i := range farm {
		d, err := dict.New(dict.Options{
			SearchMax:  8,
			SearchCost: 2 * time.Millisecond,
			Combine:    true,
			Lookup:     func(w string) string { return fmt.Sprintf("[shard] %s", w) },
		})
		if err != nil {
			log.Fatal(err)
		}
		node := rpc.NewNode(fmt.Sprintf("node-%d", i))
		if err := node.Publish(d.Object()); err != nil {
			log.Fatal(err)
		}
		lis, err := network.Listen(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = node.Serve(lis) }()
		conn, err := network.Dial(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		farm[i] = &shard{d: d, node: node, rem: rpc.DialConn(conn)}
	}
	defer func() {
		for _, s := range farm {
			s.rem.Close()
			s.node.Close()
			_ = s.d.Close()
		}
	}()

	// Scatter a batch of queries: word i goes to shard hash(i).
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	answers := make([]string, len(words))
	start := time.Now()
	var wg sync.WaitGroup
	for i, w := range words {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			res, err := farm[i%shards].rem.Call("Dictionary", "Search", w)
			if err != nil {
				log.Fatalf("shard %d: %v", i%shards, err)
			}
			answers[i] = res[0].(string)
		}(i, w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, w := range words {
		fmt.Printf("%-8s -> %s\n", w, answers[i])
	}
	fmt.Printf("%d queries over %d simulated 300µs links in %v\n",
		len(words), shards, elapsed.Round(time.Millisecond))
}
