// Distributed ALPS (§1, §3): one process plays two nodes connected over TCP
// loopback. The server node hosts a long-running Render object; the client
// calls it as a remote procedure and — while it executes — receives progress
// messages from it on an asynchronous point-to-point channel passed as a
// call parameter.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	alps "repro"
	"repro/internal/channel"
	"repro/internal/rpc"
)

func main() {
	// ---- server side -----------------------------------------------------
	renderer, err := alps.New("Renderer",
		alps.WithEntry(alps.EntrySpec{Name: "Render", Params: 2, Results: 1, Array: 4,
			Body: func(inv *alps.Invocation) error {
				frames := inv.Param(0).(int)
				progress := inv.Param(1).(*channel.Chan) // the caller's channel
				for f := 1; f <= frames; f++ {
					// ... render frame f ...
					if err := progress.Send("frame", f); err != nil {
						return err
					}
				}
				inv.Return(fmt.Sprintf("rendered %d frames", frames))
				return nil
			}}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer renderer.Close()

	node := rpc.NewNode("render-node")
	if err := node.Publish(renderer); err != nil {
		log.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Println("node serving on", addr)

	// ---- client side -------------------------------------------------------
	rem, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer rem.Close()

	names, err := rem.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote objects:", names)

	progress := alps.NewChan("progress", alps.WithArity(2))
	ref := rem.PublishChan("progress", progress)

	// Receive progress concurrently with the remote call.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, ok := progress.Recv()
			if !ok {
				return
			}
			fmt.Printf("progress: %v %v\n", msg[0], msg[1])
		}
	}()

	res, err := rem.Call("Renderer", "Render", 5, ref)
	if err != nil {
		log.Fatal(err)
	}
	progress.Close()
	<-done
	fmt.Println("result:", res[0])
}
