// Object monitoring (§1, §2.3): "the manager provides a facility for pre-
// and post-processing of entry calls which can be used not only to
// implement scheduling but also to monitor the object". Two monitoring
// mechanisms are shown: the manager's own interception of parameters and
// results (an audit log), and the lifecycle trace recorder attached to the
// object.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"sync"

	alps "repro"
)

func main() {
	rec := alps.NewTrace(0)

	// The audit log is manager-local state.
	var mu sync.Mutex
	var audit []string

	obj, err := alps.New("Account",
		alps.WithEntry(alps.EntrySpec{Name: "Transfer", Params: 2, Results: 1,
			Body: func(inv *alps.Invocation) error {
				from := inv.Param(0).(string)
				amount := inv.Param(1).(int)
				inv.Return(fmt.Sprintf("moved %d from %s", amount, from))
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			_ = m.Loop(
				alps.OnAccept("Transfer", func(a *alps.Accepted) {
					// Pre-processing: the manager sees the parameters
					// before the procedure runs...
					mu.Lock()
					audit = append(audit, fmt.Sprintf("pre : %v requests %v", a.Params[0], a.Params[1]))
					mu.Unlock()
					aw, err := m.Execute(a)
					if err != nil {
						return
					}
					// ...and post-processing: the results before the caller
					// gets them.
					mu.Lock()
					audit = append(audit, fmt.Sprintf("post: %v", aw.Results[0]))
					mu.Unlock()
				}),
			)
		}, alps.InterceptPR("Transfer", 2, 1)),
		alps.WithTrace(rec),
	)
	if err != nil {
		log.Fatal(err)
	}

	alps.Par(
		func() { mustTransfer(obj, "alice", 100) },
		func() { mustTransfer(obj, "bob", 250) },
	)
	if err := obj.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("manager audit log:")
	mu.Lock()
	for _, line := range audit {
		fmt.Println(" ", line)
	}
	mu.Unlock()

	fmt.Println("lifecycle trace (per call):")
	for id, events := range rec.ByCall() {
		fmt.Printf("  call %d:", id)
		for _, e := range events {
			fmt.Printf(" %v", e.Kind)
		}
		fmt.Println()
	}
}

func mustTransfer(obj *alps.Object, from string, amount int) {
	if _, err := obj.Call("Transfer", from, amount); err != nil {
		log.Fatal(err)
	}
}
