// Readers-writers (§2.5.1): the Read entry is exported as a single
// procedure but implemented as a hidden procedure array of ReadMax
// elements, so up to ReadMax readers overlap while writers run alone.
// The #Write pending count and the writer-turn rule prevent starvation.
//
//	go run ./examples/readerswriters
package main

import (
	"fmt"
	"log"

	alps "repro"
)

func main() {
	const readMax = 3
	data := make(map[int]int) // the database: no locks anywhere

	obj, err := alps.New("Database",
		alps.WithEntry(alps.EntrySpec{Name: "Read", Params: 1, Results: 1, Array: readMax,
			Body: func(inv *alps.Invocation) error {
				inv.Return(data[inv.Param(0).(int)])
				return nil
			}}),
		alps.WithEntry(alps.EntrySpec{Name: "Write", Params: 2,
			Body: func(inv *alps.Invocation) error {
				data[inv.Param(0).(int)] = inv.Param(1).(int)
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			readCount := 0
			writerLast := false
			_ = m.Loop(
				alps.OnAccept("Read", func(a *alps.Accepted) {
					if err := m.Start(a); err == nil {
						readCount++
					}
				}).When(func(*alps.Accepted) bool {
					return readCount < readMax && (m.Pending("Write") == 0 || writerLast)
				}),
				alps.OnAwait("Read", func(aw *alps.Awaited) {
					if err := m.Finish(aw); err == nil {
						readCount--
						writerLast = false
					}
				}),
				alps.OnAccept("Write", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err == nil {
						writerLast = true
					}
				}).When(func(*alps.Accepted) bool {
					return readCount == 0 && (m.Pending("Read") == 0 || !writerLast)
				}),
			)
		}, alps.Intercept("Read"), alps.Intercept("Write")),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	// Writers and readers hammering the same keys in parallel.
	alps.ParFor(0, 9, func(i int) {
		if i%3 == 0 {
			if _, err := obj.Call("Write", i%4, i*100); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("writer %d: wrote key %d\n", i, i%4)
			return
		}
		res, err := obj.Call("Read", i%4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reader %d: key %d = %v\n", i, i%4, res[0])
	})
}
