// Task farm: the parallel-processing shape the paper's introduction
// motivates. A master scatters work items through the §2.8.2 parallel
// bounded buffer to a farm of workers and gathers results on an
// asynchronous channel (§2.1.2). The buffer's manager brokers slot
// indices; the long "compute" steps overlap.
//
//	go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"
	"time"

	alps "repro"
	"repro/internal/objects/parbuffer"
)

func main() {
	const (
		workers = 4
		items   = 20
	)
	work, err := parbuffer.New(parbuffer.Config{
		Slots:       8,
		ProducerMax: 2,
		ConsumerMax: workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer work.Close()

	results := alps.NewChan("results", alps.WithArity(2))

	// The worker farm: each worker pulls items and reports squares.
	done := make(chan struct{})
	go func() {
		defer close(done)
		alps.ParFor(1, workers, func(id int) {
			for {
				item, err := work.Remove()
				if err != nil {
					return // buffer closed: farm drains
				}
				n := item.(int)
				if n < 0 {
					return // poison pill
				}
				time.Sleep(time.Millisecond) // the actual computation
				if err := results.Send(n, n*n); err != nil {
					return
				}
			}
		})
		results.Close()
	}()

	// The master: scatter, then poison, then gather.
	start := time.Now()
	go func() {
		for i := 1; i <= items; i++ {
			if err := work.Deposit(i); err != nil {
				return
			}
		}
		for w := 0; w < workers; w++ {
			if err := work.Deposit(-1); err != nil {
				return
			}
		}
	}()

	sum := 0
	for got := 0; got < items; got++ {
		msg, ok := results.Recv()
		if !ok {
			log.Fatal("result channel closed early")
		}
		sum += msg[1].(int)
	}
	<-done
	fmt.Printf("farmed %d items across %d workers in %v\n",
		items, workers, time.Since(start).Round(time.Millisecond))
	fmt.Printf("sum of squares 1..%d = %d\n", items, sum)
}
