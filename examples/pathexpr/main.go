// Path expressions as managers (§1): the paper notes that the idea of
// implementing all scheduling separately from the scheduled procedures
// "was first used in path expressions". This example compiles three
// classic paths into generated managers.
//
// Open-path semantics are counting semantics: in "a; b", every execution
// of b consumes one *completed* execution of a.
//
//	go run ./examples/pathexpr
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	alps "repro"
	"repro/internal/pathexpr"
)

func main() {
	// 1. Precedence: "produce; consume" — consumes never overtake produces.
	demoPrecedence()
	// 2. Alternation: "1:(deposit; remove)" — the one-slot bounded buffer.
	demoAlternation()
	// 3. Restriction: "3:(work)" — at most three concurrent activations.
	demoRestriction()
}

func build(src string, body func(name string) alps.Body) *alps.Object {
	path, err := pathexpr.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	mgr, icpts := path.Manager()
	opts := []alps.Option{alps.WithManager(mgr, icpts...)}
	for _, name := range path.Procs() {
		opts = append(opts, alps.WithEntry(alps.EntrySpec{Name: name, Array: 8, Body: body(name)}))
	}
	obj, err := alps.New("Pathed", opts...)
	if err != nil {
		log.Fatal(err)
	}
	return obj
}

func demoPrecedence() {
	fmt.Println(`path "produce; consume":`)
	var mu sync.Mutex
	balance := 0
	obj := build("produce; consume", func(name string) alps.Body {
		return func(inv *alps.Invocation) error {
			mu.Lock()
			if name == "produce" {
				balance++
			} else {
				balance--
			}
			if balance < 0 {
				log.Fatal("consume overtook produce!")
			}
			mu.Unlock()
			return nil
		}
	})
	defer obj.Close()
	alps.Par(
		func() {
			for i := 0; i < 5; i++ {
				mustCall(obj, "consume")
			}
		},
		func() {
			for i := 0; i < 5; i++ {
				mustCall(obj, "produce")
			}
		},
	)
	fmt.Println("  5 produces, 5 consumes; consumes never overtook")
}

func demoAlternation() {
	fmt.Println(`path "1:(deposit; remove)":`)
	var mu sync.Mutex
	var order []string
	obj := build("1:(deposit; remove)", func(name string) alps.Body {
		return func(inv *alps.Invocation) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	})
	defer obj.Close()
	alps.Par(
		func() {
			for i := 0; i < 4; i++ {
				mustCall(obj, "remove")
			}
		},
		func() {
			for i := 0; i < 4; i++ {
				mustCall(obj, "deposit")
			}
		},
	)
	mu.Lock()
	fmt.Println("  execution order:", order)
	mu.Unlock()
}

func demoRestriction() {
	fmt.Println(`path "3:(work)":`)
	var mu sync.Mutex
	cur, peak := 0, 0
	obj := build("3:(work)", func(name string) alps.Body {
		return func(inv *alps.Invocation) error {
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			return nil
		}
	})
	defer obj.Close()
	alps.ParFor(1, 9, func(int) { mustCall(obj, "work") })
	mu.Lock()
	fmt.Printf("  9 parallel calls, peak concurrency %d (restriction 3)\n", peak)
	mu.Unlock()
}

func mustCall(obj *alps.Object, entry string) {
	if _, err := obj.Call(entry); err != nil {
		log.Fatalf("%s: %v", entry, err)
	}
}
