// Dictionary with request combining (§2.7.1): many clients query a slow
// dictionary with a heavily skewed word distribution; the manager combines
// concurrent requests for the same word into a single search execution.
//
//	go run ./examples/dictionary
package main

import (
	"fmt"
	"log"
	"time"

	alps "repro"
	"repro/internal/objects/dict"
	"repro/internal/workload"
)

func main() {
	d, err := dict.New(dict.Options{
		SearchMax:  16,
		MaxActive:  2, // two search processors
		SearchCost: 5 * time.Millisecond,
		Combine:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	const clients, perClient = 8, 25
	start := time.Now()
	alps.ParFor(0, clients-1, func(c int) {
		ws, err := workload.NewWordStream(uint64(c)+1, 12, 1.1)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < perClient; i++ {
			word := ws.Next()
			meaning, err := d.Search(word)
			if err != nil {
				log.Fatal(err)
			}
			if meaning != "meaning of "+word {
				log.Fatalf("wrong meaning for %q: %q", word, meaning)
			}
		}
	})
	elapsed := time.Since(start)

	requests, executions, combined := d.Stats()
	fmt.Printf("answered %d requests in %v\n", requests, elapsed.Round(time.Millisecond))
	fmt.Printf("executed %d searches; %d requests were combined with an in-flight search\n",
		executions, combined)
	fmt.Printf("combining saved %.0f%% of the search work\n",
		100*float64(requests-executions)/float64(requests))
}
