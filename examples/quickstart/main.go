// Quickstart: the paper's first example (§2.4.1) — a bounded buffer whose
// manager accepts Deposit only while the buffer has room and Remove only
// while it holds messages, executing each accepted call to completion.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	alps "repro"
)

func main() {
	const n = 4 // buffer capacity

	// Shared data part of the object.
	var (
		buf    = make([]alps.Value, n)
		inptr  int
		outptr int
	)

	obj, err := alps.New("Buffer",
		// proc Deposit(Message)
		alps.WithEntry(alps.EntrySpec{Name: "Deposit", Params: 1,
			Body: func(inv *alps.Invocation) error {
				buf[inptr] = inv.Param(0)
				inptr = (inptr + 1) % n
				return nil
			}}),
		// proc Remove returns (Message)
		alps.WithEntry(alps.EntrySpec{Name: "Remove", Results: 1,
			Body: func(inv *alps.Invocation) error {
				m := buf[outptr]
				outptr = (outptr + 1) % n
				inv.Return(m)
				return nil
			}}),
		// The manager: the entire synchronization policy in one place.
		alps.WithManager(func(m *alps.Mgr) {
			count := 0
			_ = m.Loop(
				alps.OnAccept("Deposit", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err == nil {
						count++
					}
				}).When(func(*alps.Accepted) bool { return count < n }),
				alps.OnAccept("Remove", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err == nil {
						count--
					}
				}).When(func(*alps.Accepted) bool { return count > 0 }),
			)
		}, alps.Intercept("Deposit"), alps.Intercept("Remove")),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	// A producer and a consumer running in parallel (the par statement).
	const items = 10
	alps.Par(
		func() {
			for i := 0; i < items; i++ {
				if _, err := obj.Call("Deposit", fmt.Sprintf("msg-%d", i)); err != nil {
					log.Fatal(err)
				}
			}
		},
		func() {
			for i := 0; i < items; i++ {
				res, err := obj.Call("Remove")
				if err != nil {
					log.Fatal(err)
				}
				fmt.Println("received", res[0])
			}
		},
	)
}
