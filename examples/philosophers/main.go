// Dining philosophers: the manager admits a philosopher only while both
// forks are free and takes them atomically — no hold-and-wait, hence no
// deadlock, with the whole policy in the manager (§1).
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"time"

	alps "repro"
	"repro/internal/objects/philosophers"
)

func main() {
	const seats, rounds = 5, 3
	table, err := philosophers.New(philosophers.Config{
		Seats:   seats,
		EatTime: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	start := time.Now()
	alps.ParFor(0, seats-1, func(seat int) {
		for r := 0; r < rounds; r++ {
			if err := table.Dine(seat); err != nil {
				log.Fatalf("philosopher %d: %v", seat, err)
			}
			fmt.Printf("philosopher %d finished meal %d\n", seat, r+1)
		}
	})

	meals, violations := table.Stats()
	fmt.Printf("\n%d meals in %v, adjacency violations: %d, deadlocks: none\n",
		meals, time.Since(start).Round(time.Millisecond), violations)
}
