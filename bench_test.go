// Benchmarks, one per experiment in DESIGN.md §4 / EXPERIMENTS.md. These
// measure the mechanism overheads with tight loops (null or near-null
// bodies); the shape results — who wins under which workload — come from
// the experiment harness (go run ./cmd/alpsbench), which drives realistic
// simulated costs.
package alps_test

import (
	"fmt"
	"sync"
	"testing"

	alps "repro"
	"repro/internal/baseline"
	"repro/internal/objects/buffer"
	"repro/internal/objects/crossobj"
	"repro/internal/objects/dict"
	"repro/internal/objects/diskhead"
	"repro/internal/objects/parbuffer"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/pathexpr"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// BenchmarkE1BoundedBuffer measures one deposit+remove pair per iteration.
func BenchmarkE1BoundedBuffer(b *testing.B) {
	b.Run("alps-manager", func(b *testing.B) {
		b.ReportAllocs()
		buf, err := buffer.New(8)
		if err != nil {
			b.Fatal(err)
		}
		defer buf.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := buf.Deposit(i); err != nil {
				b.Fatal(err)
			}
			if _, err := buf.Remove(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Multi-client scaling: the same deposit+remove pair driven by N
	// concurrent clients. ns/op is wall time over total ops, so a flat
	// line across client counts means added concurrency buys nothing.
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("alps-manager/clients=%d", clients), func(b *testing.B) {
			b.ReportAllocs()
			buf, err := buffer.New(8)
			if err != nil {
				b.Fatal(err)
			}
			defer buf.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/clients + 1
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := buf.Deposit(i); err != nil {
							b.Error(err)
							return
						}
						if _, err := buf.Remove(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
	b.Run("monitor", func(b *testing.B) {
		b.ReportAllocs()
		buf := baseline.NewMonitorBuffer(8)
		defer buf.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := buf.Deposit(i); err != nil {
				b.Fatal(err)
			}
			if _, err := buf.Remove(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semaphore", func(b *testing.B) {
		b.ReportAllocs()
		buf := baseline.NewSemaphoreBuffer(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Deposit(i)
			buf.Remove()
		}
	})
}

// BenchmarkE2ReadersWriters measures a 90/10 read/write mix per iteration.
func BenchmarkE2ReadersWriters(b *testing.B) {
	b.Run("alps-rwdb", func(b *testing.B) {
		b.ReportAllocs()
		db, err := rwdb.New(rwdb.Config{ReadMax: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		mix, err := workload.NewOpMix(1, 32, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := mix.Next()
			if op.Write {
				if err := db.Write(op.Key, op.Value); err != nil {
					b.Fatal(err)
				}
			} else if _, _, err := db.Read(op.Key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rwmutex", func(b *testing.B) {
		b.ReportAllocs()
		db := baseline.NewBoundedRWDB(4)
		mix, err := workload.NewOpMix(1, 32, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := mix.Next()
			if op.Write {
				db.Write(op.Key, op.Value)
			} else {
				db.Read(op.Key)
			}
		}
	})
}

// BenchmarkE3Combining measures per-request cost under a duplicated
// concurrent workload, with combining on and off.
func BenchmarkE3Combining(b *testing.B) {
	for _, combine := range []bool{true, false} {
		b.Run(fmt.Sprintf("combine=%v", combine), func(b *testing.B) {
			b.ReportAllocs()
			d, err := dict.New(dict.Options{
				SearchMax: 16,
				MaxActive: 2,
				Combine:   combine,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			const clients = 8
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/clients + 1
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ws, err := workload.NewWordStream(uint64(c), 8, 1.1)
					if err != nil {
						b.Error(err)
						return
					}
					for i := 0; i < per; i++ {
						if _, err := d.Search(ws.Next()); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE4Spooler measures one print job per iteration (zero page cost).
func BenchmarkE4Spooler(b *testing.B) {
	b.ReportAllocs()
	s, err := spooler.New(spooler.Config{Printers: 4, PrintMax: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Print("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5ParallelBuffer compares the §2.8.2 parallel buffer against the
// serial §2.4.1 buffer with concurrent producers/consumers and no copy cost
// (mechanism overhead only; the shape with long copies is in alpsbench E5).
func BenchmarkE5ParallelBuffer(b *testing.B) {
	run := func(b *testing.B, deposit func(any) error, remove func() (any, error)) {
		b.ResetTimer()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := deposit(i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := remove(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		wg.Wait()
	}
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		buf, err := parbuffer.New(parbuffer.Config{Slots: 16, ProducerMax: 4, ConsumerMax: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer buf.Close()
		run(b, buf.Deposit, buf.Remove)
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		buf, err := buffer.New(16)
		if err != nil {
			b.Fatal(err)
		}
		defer buf.Close()
		run(b, buf.Deposit, buf.Remove)
	})
}

// BenchmarkE6NestedCalls measures the full X.P -> Y.Q -> X.R chain.
func BenchmarkE6NestedCalls(b *testing.B) {
	b.ReportAllocs()
	pair, err := crossobj.New()
	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pair.CallP(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7PoolModes measures call latency under each process-
// provisioning strategy (§3).
func BenchmarkE7PoolModes(b *testing.B) {
	configs := []struct {
		name    string
		mode    sched.Mode
		workers int
	}{
		{"spawn", sched.ModeSpawn, 0},
		{"one-to-one", sched.ModeOneToOne, 0},
		{"pooled-8", sched.ModePooled, 8},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			obj, err := alps.New("Service",
				alps.WithEntry(alps.EntrySpec{Name: "P", Array: 16,
					Body: func(inv *alps.Invocation) error { return nil }}),
				alps.WithPool(cfg.mode, cfg.workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := obj.Call("P"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8PriorityGate measures buffer ops with the manager wake-
// ordering gate on and off.
func BenchmarkE8PriorityGate(b *testing.B) {
	for _, gate := range []bool{true, false} {
		b.Run(fmt.Sprintf("gate=%v", gate), func(b *testing.B) {
			b.ReportAllocs()
			buf, err := buffer.New(8, alps.WithPriorityGate(gate))
			if err != nil {
				b.Fatal(err)
			}
			defer buf.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := buf.Deposit(i); err != nil {
					b.Fatal(err)
				}
				if _, err := buf.Remove(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9PriorityGuards measures one seek through the pri-guard
// scheduler (no head-travel cost).
func BenchmarkE9PriorityGuards(b *testing.B) {
	b.ReportAllocs()
	s, err := diskhead.New(diskhead.Config{QueueMax: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tracks, err := workload.NewTracks(1, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Seek(tracks.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10RemoteCall measures a remote call over TCP loopback against
// the same call made locally.
func BenchmarkE10RemoteCall(b *testing.B) {
	newEcho := func() (*alps.Object, error) {
		return alps.New("Echo",
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8,
				Body: func(inv *alps.Invocation) error {
					inv.Return(inv.Param(0))
					return nil
				}}),
		)
	}
	b.Run("local", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := newEcho()
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.Call("P", i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-tcp", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := newEcho()
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		node := rpc.NewNode("bench")
		if err := node.Publish(obj); err != nil {
			b.Fatal(err)
		}
		addr, err := node.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		rem, err := rpc.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer rem.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rem.Call("Echo", "P", i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkManagerPrimitives is the micro-ablation: the cost of each layer
// of the manager protocol, from a bare unmanaged call to full
// accept/start/await/finish with interception.
func BenchmarkManagerPrimitives(b *testing.B) {
	body := func(inv *alps.Invocation) error {
		inv.Return(inv.Param(0))
		return nil
	}
	b.Run("unmanaged-call", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := alps.New("X",
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: body}))
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.Call("P", i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("managed-execute", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := alps.New("X",
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: body}),
			alps.WithManager(func(m *alps.Mgr) {
				for {
					a, err := m.Accept("P")
					if err != nil {
						return
					}
					if _, err := m.Execute(a); err != nil {
						return
					}
				}
			}, alps.Intercept("P")),
		)
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.Call("P", i); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Multi-client scaling for the full accept/execute protocol: with the
	// batched intake mailbox the manager drains all concurrent arrivals in
	// one wakeup, so per-op cost should fall as clients are added, not rise.
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("managed-execute/clients=%d", clients), func(b *testing.B) {
			b.ReportAllocs()
			obj, err := alps.New("X",
				alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 64, Body: body}),
				alps.WithManager(func(m *alps.Mgr) {
					for {
						a, err := m.Accept("P")
						if err != nil {
							return
						}
						if _, err := m.Execute(a); err != nil {
							return
						}
					}
				}, alps.Intercept("P")),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/clients + 1
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := obj.Call("P", i); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
	b.Run("managed-combining", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := alps.New("X",
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: body}),
			alps.WithManager(func(m *alps.Mgr) {
				for {
					a, err := m.Accept("P")
					if err != nil {
						return
					}
					if err := m.FinishAccepted(a, a.Params[0]); err != nil {
						return
					}
				}
			}, alps.InterceptPR("P", 1, 1)),
		)
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := obj.Call("P", i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChannel measures the asynchronous channel primitives.
func BenchmarkChannel(b *testing.B) {
	b.Run("send-recv", func(b *testing.B) {
		b.ReportAllocs()
		c := alps.NewChan("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Send(i); err != nil {
				b.Fatal(err)
			}
			if _, ok := c.TryRecv(); !ok {
				b.Fatal("lost message")
			}
		}
	})
	b.Run("go-chan-reference", func(b *testing.B) {
		b.ReportAllocs()
		c := make(chan int, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c <- i
			<-c
		}
	})
}

// BenchmarkGuardScanWidth demonstrates the §3 implementation issue solved
// by the attached/ready index lists: the cost of a managed call must not
// grow with the hidden procedure array size N, even though the guard is
// logically "(i:1..N) accept P[i]".
func BenchmarkGuardScanWidth(b *testing.B) {
	for _, n := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("array-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			obj, err := alps.New("Wide",
				alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: n,
					Body: func(inv *alps.Invocation) error {
						inv.Return(inv.Param(0))
						return nil
					}}),
				alps.WithManager(func(m *alps.Mgr) {
					_ = m.Loop(
						alps.OnAccept("P", func(a *alps.Accepted) {
							if _, err := m.Execute(a); err != nil {
								return
							}
						}),
					)
				}, alps.Intercept("P")),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := obj.Call("P", i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolicies measures the per-call cost of the prebuilt manager
// policies relative to a raw managed execute.
func BenchmarkPolicies(b *testing.B) {
	body := func(inv *alps.Invocation) error { return nil }
	cases := []struct {
		name string
		mk   func() (func(*alps.Mgr), []alps.InterceptSpec)
	}{
		{"exclusive", func() (func(*alps.Mgr), []alps.InterceptSpec) { return policy.Exclusive("P") }},
		{"fifo", func() (func(*alps.Mgr), []alps.InterceptSpec) { return policy.FIFO("P") }},
		{"concurrent-4", func() (func(*alps.Mgr), []alps.InterceptSpec) {
			return policy.Concurrent(map[string]int{"P": 4})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			mgr, icpts := tc.mk()
			obj, err := alps.New("X",
				alps.WithEntry(alps.EntrySpec{Name: "P", Array: 8, Body: body}),
				alps.WithManager(mgr, icpts...),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := obj.Call("P"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPathExpr measures a call through a compiled path-expression
// manager (strict alternation of two entries).
func BenchmarkPathExpr(b *testing.B) {
	b.ReportAllocs()
	p, err := pathexpr.Compile("1:(a; b)")
	if err != nil {
		b.Fatal(err)
	}
	mgr, icpts := p.Manager()
	body := func(inv *alps.Invocation) error { return nil }
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "a", Array: 2, Body: body}),
		alps.WithEntry(alps.EntrySpec{Name: "b", Array: 2, Body: body}),
		alps.WithManager(mgr, icpts...),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("a"); err != nil {
			b.Fatal(err)
		}
		if _, err := obj.Call("b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetLink measures the simulated network's per-message
// overhead with zero configured latency.
func BenchmarkSimnetLink(b *testing.B) {
	b.ReportAllocs()
	network := simnet.New(simnet.Config{})
	lis, err := network.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	conn, err := network.Dial("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurability measures what the write-ahead call ledger costs a
// managed write (docs/DURABILITY.md): nothing when disabled (one nil
// check), an in-memory append when journaled without waiting (the
// rpc-hosted mode, where the ack sync pays the fsync), a full fsync per
// call when embedded locally with Wait:true, and — the point of group
// commit — a fraction of an fsync per call once concurrent writers share
// flushes.
func BenchmarkDurability(b *testing.B) {
	newDurableDB := func(b *testing.B, wait bool) *rwdb.DB {
		b.Helper()
		store, err := alps.OpenStore(b.TempDir(), alps.DurabilityOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = store.Close() })
		j := store.Journal("Database", alps.JournalOptions{Skip: rwdb.JournalSkip, Wait: wait})
		db, err := rwdb.New(rwdb.Config{ReadMax: 4, ObjOpts: []alps.Option{
			alps.WithObjectOptions(alps.ObjectOptions{Journal: j}),
		}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Recover(db.Hooks()); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = db.Close() })
		return db
	}

	b.Run("write-no-journal", func(b *testing.B) {
		b.ReportAllocs()
		db, err := rwdb.New(rwdb.Config{ReadMax: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Write(i&31, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-journal-buffered", func(b *testing.B) {
		b.ReportAllocs()
		db := newDurableDB(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Write(i&31, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-journal-fsync", func(b *testing.B) {
		b.ReportAllocs()
		db := newDurableDB(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Write(i&31, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, writers := range []int{8, 64} {
		b.Run(fmt.Sprintf("write-journal-fsync/writers=%d", writers), func(b *testing.B) {
			b.ReportAllocs()
			db := newDurableDB(b, true)
			b.SetParallelism(writers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					if err := db.Write(i&31, i); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
