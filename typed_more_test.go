package alps_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	alps "repro"
)

// newTypedFixture builds an object exercising every arity/type shape the
// generic wrappers must handle: wrong result types, 0/1/2-result entries,
// an echo entry, and a managed entry whose hidden parameters let bodies
// probe hidden arity mismatches.
func newTypedFixture(t *testing.T) *alps.Object {
	t.Helper()
	obj, err := alps.New("Typed",
		alps.WithEntry(alps.EntrySpec{Name: "Str", Results: 1,
			Body: func(inv *alps.Invocation) error { inv.Return("s"); return nil }}),
		alps.WithEntry(alps.EntrySpec{Name: "Two", Results: 2,
			Body: func(inv *alps.Invocation) error { inv.Return(1, "x"); return nil }}),
		alps.WithEntry(alps.EntrySpec{Name: "None",
			Body: func(inv *alps.Invocation) error { return nil }}),
		alps.WithEntry(alps.EntrySpec{Name: "Echo", Params: 1, Results: 1,
			Body: func(inv *alps.Invocation) error { inv.Return(inv.Param(0)); return nil }}),
		alps.WithEntry(alps.EntrySpec{Name: "Hid", Results: 2, HiddenParams: 2,
			Body: func(inv *alps.Invocation) error {
				s, err := alps.Hidden[string](inv, 0)
				if err != nil {
					return err
				}
				// Both the type mismatch (hidden 1 is an int) and the
				// out-of-range index must surface as ErrBadArity.
				_, typeErr := alps.Hidden[string](inv, 1)
				_, rangeErr := alps.Hidden[string](inv, 5)
				inv.Return(s, errors.Is(typeErr, alps.ErrBadArity) && errors.Is(rangeErr, alps.ErrBadArity))
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("Hid")
				if err != nil {
					return
				}
				if _, err := m.Execute(a, "h0", 42); err != nil {
					return
				}
			}
		}, alps.Intercept("Hid")),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obj.Close() })
	return obj
}

func TestCall1ErrorPaths(t *testing.T) {
	obj := newTypedFixture(t)
	cases := []struct {
		name    string
		call    func() (any, error)
		wantErr error
		wantMsg string // substring of the error text
	}{
		{
			name:    "result type mismatch yields zero value",
			call:    func() (any, error) { return alps.Call1[int](obj, "Str") },
			wantErr: alps.ErrBadArity,
			wantMsg: "value is string, want int",
		},
		{
			name:    "two results where one expected",
			call:    func() (any, error) { return alps.Call1[int](obj, "Two") },
			wantErr: alps.ErrBadArity,
			wantMsg: "returned 2 results, want 1",
		},
		{
			name:    "zero results where one expected",
			call:    func() (any, error) { return alps.Call1[int](obj, "None") },
			wantErr: alps.ErrBadArity,
			wantMsg: "returned 0 results, want 1",
		},
		{
			name:    "unknown entry",
			call:    func() (any, error) { return alps.Call1[int](obj, "Nope") },
			wantErr: alps.ErrUnknownEntry,
		},
		{
			name:    "wrong parameter count",
			call:    func() (any, error) { return alps.Call1[string](obj, "Echo", "a", "b") },
			wantErr: alps.ErrBadArity,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.call()
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("err %q missing %q", err, tc.wantMsg)
			}
			if got != 0 && got != "" && got != nil {
				t.Errorf("error path returned non-zero value %v", got)
			}
		})
	}
}

func TestCall2ErrorPaths(t *testing.T) {
	obj := newTypedFixture(t)
	cases := []struct {
		name    string
		call    func() error
		wantErr error
		wantMsg string
	}{
		{
			name: "both results convert",
			call: func() error {
				a, b, err := alps.Call2[int, string](obj, "Two")
				if err == nil && (a != 1 || b != "x") {
					return errors.New("wrong values")
				}
				return err
			},
		},
		{
			name: "first result mismatch is attributed",
			call: func() error {
				_, _, err := alps.Call2[string, string](obj, "Two")
				return err
			},
			wantErr: alps.ErrBadArity,
			wantMsg: "result 0",
		},
		{
			name: "second result mismatch is attributed",
			call: func() error {
				_, _, err := alps.Call2[int, int](obj, "Two")
				return err
			},
			wantErr: alps.ErrBadArity,
			wantMsg: "result 1",
		},
		{
			name: "one result where two expected",
			call: func() error {
				_, _, err := alps.Call2[string, string](obj, "Str")
				return err
			},
			wantErr: alps.ErrBadArity,
			wantMsg: "returned 1 results, want 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("err %q missing %q", err, tc.wantMsg)
			}
		})
	}
}

func TestCall0Arity(t *testing.T) {
	obj := newTypedFixture(t)
	if err := alps.Call0(obj, "None"); err != nil {
		t.Fatalf("Call0(None) = %v", err)
	}
	if err := alps.Call0(obj, "Str"); !errors.Is(err, alps.ErrBadArity) {
		t.Fatalf("Call0 on 1-result entry = %v, want ErrBadArity", err)
	}
}

// TestCall1CtxCancelled: a call withdrawn by context cancellation before
// the manager accepts it must surface the context's error with a
// zero-value result. (A call whose body already started cannot be
// abandoned — the runtime waits for it — so the entry is gated behind a
// manager that never accepts.)
func TestCall1CtxCancelled(t *testing.T) {
	release := make(chan struct{})
	obj, err := alps.New("Blocky",
		alps.WithEntry(alps.EntrySpec{Name: "Block", Results: 1,
			Body: func(inv *alps.Invocation) error {
				inv.Return("late")
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			<-release // hold every call in the attached state
			for {
				a, err := m.Accept("Block")
				if err != nil {
					return
				}
				_, _ = m.Execute(a)
			}
		}, alps.Intercept("Block")),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obj.Close() })
	t.Cleanup(func() { close(release) })

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, callErr := alps.Call1Ctx[string](ctx, obj, "Block")
	if !errors.Is(callErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", callErr)
	}
	if got != "" {
		t.Errorf("cancelled call returned %q, want zero value", got)
	}
}

// TestHiddenMismatches drives the managed entry whose body probes hidden
// parameter conversions: the manager supplies ("h0", 42), and the body's
// in-range string, mismatched type and out-of-range probes must behave.
func TestHiddenMismatches(t *testing.T) {
	obj := newTypedFixture(t)
	s, flagged, err := alps.Call2[string, bool](obj, "Hid")
	if err != nil {
		t.Fatal(err)
	}
	if s != "h0" {
		t.Errorf("hidden[0] = %q, want h0", s)
	}
	if !flagged {
		t.Error("hidden type/range mismatches were not reported as ErrBadArity")
	}
}

func TestAsTable(t *testing.T) {
	t.Run("interface target always converts", func(t *testing.T) {
		v, err := alps.As[any](42)
		if err != nil || v != 42 {
			t.Fatalf("As[any] = %v, %v", v, err)
		}
	})
	t.Run("nil value mismatches concrete target", func(t *testing.T) {
		if _, err := alps.As[int](nil); !errors.Is(err, alps.ErrBadArity) {
			t.Fatalf("As[int](nil) = %v, want ErrBadArity", err)
		}
	})
	t.Run("zero value on mismatch", func(t *testing.T) {
		v, err := alps.As[int]("x")
		if err == nil || v != 0 {
			t.Fatalf("As[int](string) = %d, %v", v, err)
		}
	})
}

// TestCallAfterClose: every wrapper must pass ErrClosed through unchanged.
func TestTypedCallAfterClose(t *testing.T) {
	obj := newTypedFixture(t)
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := alps.Call1[string](obj, "Str"); !errors.Is(err, alps.ErrClosed) {
		t.Errorf("Call1 after close = %v, want ErrClosed", err)
	}
	if err := alps.Call0(obj, "None"); !errors.Is(err, alps.ErrClosed) {
		t.Errorf("Call0 after close = %v, want ErrClosed", err)
	}
	if _, _, err := alps.Call2[int, string](obj, "Two"); !errors.Is(err, alps.ErrClosed) {
		t.Errorf("Call2 after close = %v, want ErrClosed", err)
	}
}
