// Package alps is a Go implementation of the ALPS object model from
// P. Vishnubhotla, "Synchronization and Scheduling in ALPS Objects"
// (ICDCS 1988).
//
// ALPS is an object-oriented concurrent language: an object is a data part
// shared by a set of entry procedures, and an optional high-priority
// *manager* process intercepts entry calls and implements all
// synchronization and scheduling for the object with four primitives —
// accept, start, await, finish. Entries may be *hidden procedure arrays*:
// exported as a single procedure, implemented as an array of N elements so
// that up to N calls are serviced concurrently, each identifiable by the
// manager. The paper's remaining mechanisms — intercepted parameter/result
// prefixes, hidden parameters and results, request combining,
// nondeterministic select/loop with acceptance conditions and run-time
// priorities, asynchronous point-to-point channels, and the par statement —
// are all provided.
//
// # Quick start
//
//	buf, _ := alps.New("Buffer",
//	    alps.WithEntry(alps.EntrySpec{Name: "Deposit", Params: 1, Body: deposit}),
//	    alps.WithEntry(alps.EntrySpec{Name: "Remove", Results: 1, Body: remove}),
//	    alps.WithManager(func(m *alps.Mgr) {
//	        count := 0
//	        _ = m.Loop(
//	            alps.OnAccept("Deposit", func(a *alps.Accepted) {
//	                if _, err := m.Execute(a); err == nil { count++ }
//	            }).When(func(*alps.Accepted) bool { return count < N }),
//	            alps.OnAccept("Remove", func(a *alps.Accepted) {
//	                if _, err := m.Execute(a); err == nil { count-- }
//	            }).When(func(*alps.Accepted) bool { return count > 0 }),
//	        )
//	    }, alps.Intercept("Deposit"), alps.Intercept("Remove")),
//	)
//	defer buf.Close()
//	res, err := buf.Call("Remove")
//
// The package is a thin facade over internal/core (objects and managers),
// internal/channel (asynchronous channels) and internal/sched (the
// lightweight-process substrate); see DESIGN.md for the architecture.
package alps

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Core object model types, re-exported.
type (
	// Object is an ALPS object instance.
	Object = core.Object
	// Option configures an Object at construction time.
	Option = core.Option
	// EntrySpec declares one procedure of an object's implementation part.
	EntrySpec = core.EntrySpec
	// InterceptSpec is one element of a manager's intercepts clause.
	InterceptSpec = core.InterceptSpec
	// Body is an entry procedure implementation.
	Body = core.Body
	// Invocation is the body-side view of a call being serviced.
	Invocation = core.Invocation
	// Mgr is the manager process's handle on its object.
	Mgr = core.Mgr
	// Accepted is the manager's handle on an accepted call.
	Accepted = core.Accepted
	// Awaited is the manager's handle on an awaited call.
	Awaited = core.Awaited
	// Guard is one alternative of a select or loop statement.
	Guard = core.Guard
	// Value is one parameter, result or message value.
	Value = core.Value
	// BodyError wraps a panic raised by an entry procedure body.
	BodyError = core.BodyError
	// EntryStats is a snapshot of one entry's lifetime counters.
	EntryStats = core.EntryStats
)

// Supervision and admission-control types (docs/SUPERVISION.md), re-exported.
type (
	// ObjectOptions bundles manager supervision, admission control, default
	// call deadlines and the stall watchdog.
	ObjectOptions = core.ObjectOptions
	// ManagerPolicy selects the reaction to a manager panic.
	ManagerPolicy = core.ManagerPolicy
	// RestartPolicy tunes the Restart manager policy.
	RestartPolicy = core.RestartPolicy
	// ShedPolicy selects what happens when an entry's MaxPending is full.
	ShedPolicy = core.ShedPolicy
	// WatchdogConfig configures the per-object stall watchdog.
	WatchdogConfig = core.WatchdogConfig
	// StallInfo describes one stall-watchdog detection.
	StallInfo = core.StallInfo
	// SupervisionStats is a snapshot of an object's supervision state.
	SupervisionStats = core.SupervisionStats
	// SupervisionMetrics aggregates shed/restart/poison/stall counters
	// across objects.
	SupervisionMetrics = metrics.Supervision
	// Sequencer is the virtual-scheduler hook the conformance harness
	// injects via ObjectOptions.Sequencer (docs/TESTING.md). Nil in
	// production.
	Sequencer = core.Sequencer
	// SeqPoint identifies one scheduling decision point reported to a
	// Sequencer.
	SeqPoint = core.SeqPoint
)

// Supervision policy values, re-exported.
const (
	// FailFast poisons the object on the first manager panic (default).
	FailFast = core.FailFast
	// Restart re-runs the manager after a panic, within a restart budget.
	Restart = core.Restart
	// ShedBlock makes callers wait for pending capacity (default).
	ShedBlock = core.ShedBlock
	// ShedRejectNewest fails the arriving call with ErrOverload.
	ShedRejectNewest = core.ShedRejectNewest
	// ShedRejectOldest fails the oldest pending call and admits the new one.
	ShedRejectOldest = core.ShedRejectOldest
)

// Durability types (docs/DURABILITY.md), re-exported. A DurableStore is a
// write-ahead call ledger plus snapshots; per-object journals plug into
// ObjectOptions.Journal so acknowledged state transitions survive process
// death and are replayed through the object's own call surface on restart.
type (
	// Journal is the hook an object delivers call outcomes to
	// (ObjectOptions.Journal). Nil — the default — keeps the delivery path
	// free of durability work.
	Journal = core.Journal
	// DurableStore is one directory of write-ahead log segments and
	// snapshots shared by the objects of a process.
	DurableStore = wal.Store
	// DurabilityOptions configures OpenStore.
	DurabilityOptions = wal.StoreOptions
	// JournalOptions configures one object's journal (entry skip-list,
	// local durability waits).
	JournalOptions = wal.JournalOptions
	// ObjectJournal is one object's handle on the store; it satisfies
	// Journal.
	ObjectJournal = wal.ObjectJournal
	// RecoverHooks are the object-side callbacks for crash recovery and
	// snapshots.
	RecoverHooks = wal.RecoverHooks
	// RecoveryStats summarizes what OpenStore recovered from disk.
	RecoveryStats = wal.RecoveryStats
	// DurabilityMetrics counts fsyncs, journaled bytes/records and
	// snapshots.
	DurabilityMetrics = wal.Metrics
)

// OpenStore opens (or creates) the durability store rooted at dir and
// recovers its ledger: the newest readable snapshot is loaded, the log's
// torn tail is truncated, and journaled outcomes above the snapshot floor
// are staged for per-object Recover (docs/DURABILITY.md).
func OpenStore(dir string, opts DurabilityOptions) (*DurableStore, error) {
	return wal.OpenStore(dir, opts)
}

// Channel types, re-exported.
type (
	// Chan is an asynchronous point-to-point channel.
	Chan = channel.Chan
	// Message is one tuple sent over a channel.
	Message = channel.Message
)

// Pool modes for WithPool (paper §3).
const (
	// PoolSpawn creates a fresh lightweight process per started call.
	PoolSpawn = sched.ModeSpawn
	// PoolOneToOne pre-creates one process per hidden-array element.
	PoolOneToOne = sched.ModeOneToOne
	// PoolShared pre-creates M processes bound to calls at start time.
	PoolShared = sched.ModePooled
)

// Errors, re-exported.
var (
	// ErrClosed reports an operation on a closed object or channel.
	ErrClosed = core.ErrClosed
	// ErrUnknownEntry reports a call to an undeclared procedure.
	ErrUnknownEntry = core.ErrUnknownEntry
	// ErrBadArity reports a parameter/result count mismatch.
	ErrBadArity = core.ErrBadArity
	// ErrBadState reports a manager protocol violation.
	ErrBadState = core.ErrBadState
	// ErrNotIntercepted reports a manager primitive on an entry missing
	// from the intercepts clause.
	ErrNotIntercepted = core.ErrNotIntercepted
	// ErrObjectPoisoned reports a call on an object whose manager died
	// without recovering. Terminal: do not retry.
	ErrObjectPoisoned = core.ErrObjectPoisoned
	// ErrOverload reports a call shed by admission control. The call did
	// not execute; retrying with backoff is safe.
	ErrOverload = core.ErrOverload
)

// New creates, initializes and starts an object.
func New(name string, opts ...Option) (*Object, error) { return core.New(name, opts...) }

// WithEntry declares one procedure of the object's implementation part.
func WithEntry(spec EntrySpec) Option { return core.WithEntry(spec) }

// WithManager installs the manager process and its intercepts clause.
func WithManager(fn func(*Mgr), intercepts ...InterceptSpec) Option {
	return core.WithManager(fn, intercepts...)
}

// WithInit registers initialization code run when the object is created,
// before the manager starts.
func WithInit(fn func()) Option { return core.WithInit(fn) }

// WithTrace attaches a lifecycle event recorder for monitoring.
func WithTrace(rec *trace.Recorder) Option { return core.WithTrace(rec) }

// WithPriorityGate controls the high-priority-manager approximation.
func WithPriorityGate(on bool) Option { return core.WithPriorityGate(on) }

// WithPool selects the lightweight-process provisioning mode.
func WithPool(mode sched.Mode, workers int) Option { return core.WithPool(mode, workers) }

// WithObjectOptions attaches supervision and admission-control
// configuration to an object (docs/SUPERVISION.md).
func WithObjectOptions(opts ObjectOptions) Option { return core.WithObjectOptions(opts) }

// Intercept lists an entry in the intercepts clause without parameter or
// result interception ("intercepts P").
func Intercept(entry string) InterceptSpec { return core.Intercept(entry) }

// InterceptPR lists an entry with interception of the first params
// invocation parameters and first results results
// ("intercepts P(params; results)").
func InterceptPR(entry string, params, results int) InterceptSpec {
	return core.InterceptPR(entry, params, results)
}

// OnAccept builds an "accept P[i] => action" guard.
func OnAccept(entry string, action func(*Accepted)) Guard { return core.OnAccept(entry, action) }

// OnAwait builds an "await P[i] => action" guard.
func OnAwait(entry string, action func(*Awaited)) Guard { return core.OnAwait(entry, action) }

// OnReceive builds a "receive C => action" guard.
func OnReceive(ch *Chan, action func(Message)) Guard { return core.OnReceive(ch, action) }

// OnCond builds a pure boolean "when B => action" guard.
func OnCond(cond func() bool, action func()) Guard { return core.OnCond(cond, action) }

// NewChan creates an asynchronous point-to-point channel.
func NewChan(name string, opts ...channel.Option) *Chan { return channel.New(name, opts...) }

// WithArity declares a channel's tuple width.
func WithArity(n int) channel.Option { return channel.WithArity(n) }

// NewTrace creates a lifecycle recorder holding at most limit events
// (0 = unlimited).
func NewTrace(limit int) *trace.Recorder { return trace.NewRecorder(limit) }
