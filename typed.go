package alps

import (
	"context"
	"fmt"
)

// The Value-based API mirrors ALPS's runtime-checked parameter passing; the
// helpers below recover Go-level type safety at call sites.

// As converts a single Value, reporting a descriptive error on type
// mismatch instead of panicking.
func As[T any](v Value) (T, error) {
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("%w: value is %T, want %T", ErrBadArity, v, zero)
	}
	return t, nil
}

// Call0 invokes an entry that returns no results.
func Call0(o *Object, entry string, params ...Value) error {
	res, err := o.Call(entry, params...)
	if err != nil {
		return err
	}
	if len(res) != 0 {
		return fmt.Errorf("%w: %s returned %d results, want 0", ErrBadArity, entry, len(res))
	}
	return nil
}

// Call1 invokes an entry that returns one result of type T.
func Call1[T any](o *Object, entry string, params ...Value) (T, error) {
	return Call1Ctx[T](context.Background(), o, entry, params...)
}

// Call1Ctx is Call1 with a context.
func Call1Ctx[T any](ctx context.Context, o *Object, entry string, params ...Value) (T, error) {
	var zero T
	res, err := o.CallCtx(ctx, entry, params...)
	if err != nil {
		return zero, err
	}
	if len(res) != 1 {
		return zero, fmt.Errorf("%w: %s returned %d results, want 1", ErrBadArity, entry, len(res))
	}
	return As[T](res[0])
}

// Call2 invokes an entry that returns two results of types T and U.
func Call2[T, U any](o *Object, entry string, params ...Value) (T, U, error) {
	var (
		zt T
		zu U
	)
	res, err := o.Call(entry, params...)
	if err != nil {
		return zt, zu, err
	}
	if len(res) != 2 {
		return zt, zu, fmt.Errorf("%w: %s returned %d results, want 2", ErrBadArity, entry, len(res))
	}
	t, err := As[T](res[0])
	if err != nil {
		return zt, zu, fmt.Errorf("result 0: %w", err)
	}
	u, err := As[U](res[1])
	if err != nil {
		return zt, zu, fmt.Errorf("result 1: %w", err)
	}
	return t, u, nil
}

// Param extracts the i-th regular parameter of an invocation as type T,
// turning a mismatch into a call failure instead of a panic.
func Param[T any](inv *Invocation, i int) (T, error) {
	if i < 0 || i >= len(inv.Params()) {
		var zero T
		return zero, fmt.Errorf("%w: param index %d of %d", ErrBadArity, i, len(inv.Params()))
	}
	return As[T](inv.Param(i))
}

// Hidden extracts the i-th hidden parameter of an invocation as type T.
func Hidden[T any](inv *Invocation, i int) (T, error) {
	if i < 0 || i >= len(inv.HiddenParams()) {
		var zero T
		return zero, fmt.Errorf("%w: hidden param index %d of %d", ErrBadArity, i, len(inv.HiddenParams()))
	}
	return As[T](inv.Hidden(i))
}

// Recv1 receives one message from a channel and extracts its single value
// as type T. ok is false if the channel is closed and drained.
func Recv1[T any](c *Chan) (T, bool, error) {
	var zero T
	msg, ok := c.Recv()
	if !ok {
		return zero, false, nil
	}
	if len(msg) != 1 {
		return zero, true, fmt.Errorf("%w: message has %d values, want 1", ErrBadArity, len(msg))
	}
	v, err := As[T](msg[0])
	return v, true, err
}
