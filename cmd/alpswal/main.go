// alpswal dumps a write-ahead journal directory as text, one record per
// line, in LSN order. It exists for post-mortem forensics on the e2e
// chaos harness's per-node data dirs: when the oracle reports a
// divergence, the journals are the ground truth for which node executed,
// extracted, installed or forgot what, and in which order.
//
//	alpswal [-grep substr] DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/wal"
)

func main() {
	grep := flag.String("grep", "", "only print records whose rendering contains this substring")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alpswal [-grep substr] DIR")
		os.Exit(2)
	}
	log, recovered, err := wal.Open(flag.Arg(0), wal.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alpswal: %v\n", err)
		os.Exit(1)
	}
	defer log.Close()
	if recovered.Snapshot != nil {
		fmt.Printf("# snapshot floor lsn=%d\n", recovered.Snapshot.LSN)
	}
	if recovered.TornBytes > 0 {
		fmt.Printf("# torn tail: %d bytes truncated\n", recovered.TornBytes)
	}
	for _, rec := range recovered.Records {
		line := render(rec)
		if *grep != "" && !strings.Contains(line, *grep) {
			continue
		}
		fmt.Println(line)
	}
}

func render(rec *wal.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lsn=%d kind=%d obj=%s entry=%s", rec.LSN, rec.Kind, rec.Object, rec.Entry)
	if rec.Client != "" {
		fmt.Fprintf(&b, " client=%s seq=%d", rec.Client, rec.Seq)
	}
	for i, p := range rec.Params {
		switch v := p.(type) {
		case []byte:
			fmt.Fprintf(&b, " p%d=%dB", i, len(v))
		default:
			fmt.Fprintf(&b, " p%d=%v", i, v)
		}
	}
	return b.String()
}
