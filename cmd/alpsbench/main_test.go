package main

import (
	"os"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	bad := [][]string{
		{"-nope"},
		{"-scale", "medium"},
		{"-run", "E99"},
		{"-format", "xml"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	// E6 is the fastest experiment with a meaningful pass/fail shape.
	if err := run([]string{"-scale", "quick", "-run", "E6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	if err := run([]string{"-scale", "quick", "-run", "E6, E9"}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdownAndFileOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	path := t.TempDir() + "/out.md"
	if err := run([]string{"-scale", "quick", "-run", "E6", "-format", "md", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "### E6") || !strings.Contains(string(data), "|---|") {
		t.Fatalf("markdown output file:\n%s", data)
	}
}
