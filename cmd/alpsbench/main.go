// Command alpsbench runs the experiment suite that reproduces the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md) and prints one table per
// experiment.
//
// Usage:
//
//	alpsbench                 # run everything at full scale
//	alpsbench -scale quick    # fast pass
//	alpsbench -run E3,E9      # selected experiments
//	alpsbench -list           # list experiment IDs and titles
//	alpsbench -format md -o results.md   # markdown, also appended to a file
//	alpsbench -format json -scale quick -o BENCH.json   # machine-readable
//
// JSON mode additionally runs the micro benchmark suite (testing.Benchmark
// equivalents of bench_test.go) and records ns/op, allocs/op and B/op per
// case, so checked-in BENCH_*.json baselines can be compared across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alpsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("alpsbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "all", "comma-separated experiment IDs (e.g. E1,E3) or 'all'")
		scaleName = fs.String("scale", "full", "workload scale: quick or full")
		list      = fs.Bool("list", false, "list experiments and exit")
		format    = fs.String("format", "text", "output format: text, md or json")
		outPath   = fs.String("o", "", "also append the output to this file (json: truncate and write only the file)")
		label     = fs.String("label", "", "free-form label recorded in json output (e.g. baseline, pr2)")
		noMicro   = fs.Bool("nomicro", false, "json: skip the micro benchmark suite")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *format == "json" {
		return runJSON(selected, scale, *scaleName, *label, *outPath, !*noMicro)
	}
	if *format != "text" && *format != "md" {
		return fmt.Errorf("unknown format %q (want text, md or json)", *format)
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if *format == "md" {
			fmt.Fprintf(out, "### %s: %s\n\n", e.ID, e.Title)
		} else {
			fmt.Fprintf(out, "== %s: %s\n", e.ID, e.Title)
		}
		start := time.Now()
		table, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "md" {
			fmt.Fprint(out, table.Markdown())
		} else {
			fmt.Fprint(out, table.String())
		}
		fmt.Fprintf(out, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// benchJSON is the schema of the checked-in BENCH_*.json baselines.
type benchJSON struct {
	Label       string        `json:"label,omitempty"`
	Scale       string        `json:"scale"`
	GoVersion   string        `json:"go_version"`
	Micro       []microResult `json:"micro,omitempty"`
	Experiments []expJSON     `json:"experiments"`
}

type expJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Seconds float64    `json:"seconds"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// runJSON runs the micro suite and the selected experiments, then writes
// one JSON document to outPath (truncating) or stdout. Progress goes to
// stderr so the JSON stream stays clean.
func runJSON(selected []experiments.Experiment, scale experiments.Scale, scaleName, label, outPath string, micro bool) error {
	doc := benchJSON{
		Label:     label,
		Scale:     scaleName,
		GoVersion: runtime.Version(),
	}
	if micro {
		doc.Micro = runMicro(func(name string) {
			fmt.Fprintf(os.Stderr, "micro %s\n", name)
		})
	}
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "experiment %s: %s\n", e.ID, e.Title)
		start := time.Now()
		table, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		doc.Experiments = append(doc.Experiments, expJSON{
			ID:      e.ID,
			Title:   e.Title,
			Seconds: time.Since(start).Seconds(),
			Columns: table.Columns,
			Rows:    table.Cells(),
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}
