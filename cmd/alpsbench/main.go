// Command alpsbench runs the experiment suite that reproduces the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md) and prints one table per
// experiment.
//
// Usage:
//
//	alpsbench                 # run everything at full scale
//	alpsbench -scale quick    # fast pass
//	alpsbench -run E3,E9      # selected experiments
//	alpsbench -list           # list experiment IDs and titles
//	alpsbench -format md -o results.md   # markdown, also appended to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alpsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("alpsbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "all", "comma-separated experiment IDs (e.g. E1,E3) or 'all'")
		scaleName = fs.String("scale", "full", "workload scale: quick or full")
		list      = fs.Bool("list", false, "list experiments and exit")
		format    = fs.String("format", "text", "output format: text or md")
		outPath   = fs.String("o", "", "also append the output to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *format != "text" && *format != "md" {
		return fmt.Errorf("unknown format %q (want text or md)", *format)
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if *format == "md" {
			fmt.Fprintf(out, "### %s: %s\n\n", e.ID, e.Title)
		} else {
			fmt.Fprintf(out, "== %s: %s\n", e.ID, e.Title)
		}
		start := time.Now()
		table, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "md" {
			fmt.Fprint(out, table.Markdown())
		} else {
			fmt.Fprint(out, table.String())
		}
		fmt.Fprintf(out, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
