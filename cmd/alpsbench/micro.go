// Micro benchmarks for the JSON baseline: each mirrors one benchmark from
// bench_test.go and is driven through testing.Benchmark so alpsbench can
// emit machine-readable ns/op, allocs/op and B/op without `go test`. The
// BENCH_*.json files checked into the repo root are produced from these
// (see docs/PERFORMANCE.md for how to regenerate them).
package main

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	alps "repro"
	"repro/internal/baseline"
	"repro/internal/objects/buffer"
	"repro/internal/objects/crossobj"
	"repro/internal/objects/dict"
	"repro/internal/objects/diskhead"
	"repro/internal/objects/parbuffer"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/simnet"
	"repro/internal/wire"
	"repro/internal/workload"
)

// microResult is one micro benchmark's measurement in the JSON output.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type microBench struct {
	name string
	fn   func(b *testing.B)
}

// runMicro executes every micro benchmark and collects its results.
func runMicro(progress func(name string)) []microResult {
	out := make([]microResult, 0, 24)
	for _, mb := range microBenches() {
		if progress != nil {
			progress(mb.name)
		}
		r := testing.Benchmark(mb.fn)
		nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
		ops := 0.0
		if nsOp > 0 {
			ops = 1e9 / nsOp
		}
		out = append(out, microResult{
			Name:        mb.name,
			Iterations:  r.N,
			NsPerOp:     nsOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			OpsPerSec:   ops,
		})
	}
	return out
}

func microBenches() []microBench {
	return []microBench{
		{"E1BoundedBuffer/alps-manager", microE1Manager},
		{"E1BoundedBuffer/monitor", microE1Monitor},
		{"E1BoundedBuffer/semaphore", microE1Semaphore},
		{"E2ReadersWriters/alps-rwdb", microE2RWDB},
		{"E3Combining/combine=true", microE3Combining},
		{"E4Spooler", microE4Spooler},
		{"E5ParallelBuffer/parallel", microE5Parallel},
		{"E5ParallelBuffer/serial", microE5Serial},
		{"E6NestedCalls", microE6Nested},
		{"E7PoolModes/spawn", microE7Spawn},
		{"E7PoolModes/pooled-8", microE7Pooled},
		{"E8PriorityGate/gate=true", microE8Gate},
		{"E9PriorityGuards", microE9Guards},
		{"E10RemoteCall/local", microE10Local},
		{"E10RemoteCall/remote-tcp", microE10Remote},
		{"RemotePipelined/clients=64-conns=1", microRemotePipelined},
		{"WireCodec/encode-frame", microWireEncode},
		{"WireCodec/decode-frame", microWireDecode},
		{"ManagerPrimitives/unmanaged-call", microUnmanaged},
		{"ManagerPrimitives/managed-execute", microManagedExecute},
		{"ManagerPrimitives/managed-execute-8c", microManagedExecute8C},
		{"ManagerPrimitives/managed-combining", microManagedCombining},
		{"ShardGroup/shards=1-clients=64", microShardGroup1},
		{"ShardGroup/shards=8-clients=64", microShardGroup8},
		{"ReplicatedCall/replicas=3", microReplicatedCall},
		{"ReplicatedCall/clients=1", microReplicatedCall1},
		{"ReplicatedCall/clients=8", microReplicatedCall8},
		{"ReplicatedCall/clients=64", microReplicatedCall64},
		{"ReplicatedRead/replicas=3", microReplicatedRead},
		{"ReplicatedRead/clients=64", microReplicatedRead64},
		{"Channel/send-recv", microChannel},
		{"GuardScanWidth/array-4096", microGuardWidth},
		{"SimnetLink", microSimnetLink},
	}
}

func microE1Manager(b *testing.B) {
	b.ReportAllocs()
	buf, err := buffer.New(8)
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Deposit(i); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.Remove(); err != nil {
			b.Fatal(err)
		}
	}
}

func microE1Monitor(b *testing.B) {
	b.ReportAllocs()
	buf := baseline.NewMonitorBuffer(8)
	defer buf.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Deposit(i); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.Remove(); err != nil {
			b.Fatal(err)
		}
	}
}

func microE1Semaphore(b *testing.B) {
	b.ReportAllocs()
	buf := baseline.NewSemaphoreBuffer(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Deposit(i)
		buf.Remove()
	}
}

func microE2RWDB(b *testing.B) {
	b.ReportAllocs()
	db, err := rwdb.New(rwdb.Config{ReadMax: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	mix, err := workload.NewOpMix(1, 32, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := mix.Next()
		if op.Write {
			if err := db.Write(op.Key, op.Value); err != nil {
				b.Fatal(err)
			}
		} else if _, _, err := db.Read(op.Key); err != nil {
			b.Fatal(err)
		}
	}
}

func microE3Combining(b *testing.B) {
	b.ReportAllocs()
	d, err := dict.New(dict.Options{SearchMax: 16, MaxActive: 2, Combine: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	const clients = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ws, err := workload.NewWordStream(uint64(c), 8, 1.1)
			if err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if _, err := d.Search(ws.Next()); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func microE4Spooler(b *testing.B) {
	b.ReportAllocs()
	s, err := spooler.New(spooler.Config{Printers: 4, PrintMax: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Print("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func microE5Run(b *testing.B, deposit func(any) error, remove func() (any, error)) {
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			if err := deposit(i); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			if _, err := remove(); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func microE5Parallel(b *testing.B) {
	b.ReportAllocs()
	buf, err := parbuffer.New(parbuffer.Config{Slots: 16, ProducerMax: 4, ConsumerMax: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Close()
	microE5Run(b, buf.Deposit, buf.Remove)
}

func microE5Serial(b *testing.B) {
	b.ReportAllocs()
	buf, err := buffer.New(16)
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Close()
	microE5Run(b, buf.Deposit, buf.Remove)
}

func microE6Nested(b *testing.B) {
	b.ReportAllocs()
	pair, err := crossobj.New()
	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pair.CallP(i); err != nil {
			b.Fatal(err)
		}
	}
}

func microE7(b *testing.B, mode sched.Mode, workers int) {
	b.ReportAllocs()
	obj, err := alps.New("Service",
		alps.WithEntry(alps.EntrySpec{Name: "P", Array: 16,
			Body: func(inv *alps.Invocation) error { return nil }}),
		alps.WithPool(mode, workers),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P"); err != nil {
			b.Fatal(err)
		}
	}
}

func microE7Spawn(b *testing.B)  { microE7(b, sched.ModeSpawn, 0) }
func microE7Pooled(b *testing.B) { microE7(b, sched.ModePooled, 8) }

func microE8Gate(b *testing.B) {
	b.ReportAllocs()
	buf, err := buffer.New(8, alps.WithPriorityGate(true))
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Deposit(i); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.Remove(); err != nil {
			b.Fatal(err)
		}
	}
}

func microE9Guards(b *testing.B) {
	b.ReportAllocs()
	s, err := diskhead.New(diskhead.Config{QueueMax: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tracks, err := workload.NewTracks(1, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Seek(tracks.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func microEcho() (*alps.Object, error) {
	return alps.New("Echo",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 8,
			Body: func(inv *alps.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
	)
}

func microE10Local(b *testing.B) {
	b.ReportAllocs()
	obj, err := microEcho()
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P", i); err != nil {
			b.Fatal(err)
		}
	}
}

func microE10Remote(b *testing.B) {
	b.ReportAllocs()
	obj, err := microEcho()
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	node := rpc.NewNode("bench")
	if err := node.Publish(obj); err != nil {
		b.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	rem, err := rpc.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer rem.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.Call("Echo", "P", i); err != nil {
			b.Fatal(err)
		}
	}
}

// microRemotePipelined is the E14-shaped throughput workload behind the
// wire-codec headline (BenchmarkRemotePipelined in bench_remote_test.go):
// 64 client goroutines multiplexed over one shared connection, driving a
// hidden-array echo object. Unlike E10's lock-step round-trips, the
// pending table keeps many calls on the link at once, so this measures
// codec cost, read-loop dispatch, frame coalescing and the async
// completion path, not one-call latency.
func microRemotePipelined(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("Echo",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 128,
			Body: func(inv *alps.Invocation) error {
				inv.Return(inv.Param(0))
				return nil
			}}),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	node := rpc.NewNode("bench")
	if err := node.Publish(obj); err != nil {
		b.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	rem, err := rpc.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer rem.Close()

	const clients = 64
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := rem.Call("Echo", "P", i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// wireBenchFrame is a representative request frame for the codec micros:
// mixed scalar parameters, the shape a real call puts on the wire.
func wireBenchFrame() *wire.Frame {
	return &wire.Frame{
		Kind:   wire.KindRequest,
		ID:     12345,
		Object: "Echo",
		Entry:  "P",
		Client: "bench-client",
		Seq:    678,
		Params: []any{42, "payload", true, 3.14, []byte("0123456789abcdef")},
	}
}

func microWireEncode(b *testing.B) {
	b.ReportAllocs()
	table := wire.DefaultTable.Snapshot()
	f := wireBenchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.GetBuf()
		out, err := wire.AppendFrame(*buf, f, table)
		if err != nil {
			b.Fatal(err)
		}
		*buf = out
		wire.PutBuf(buf)
	}
}

// loopReader replays one encoded frame endlessly, so a single decoder
// can stream b.N frames without per-iteration reader churn.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func microWireDecode(b *testing.B) {
	b.ReportAllocs()
	table := wire.DefaultTable.Snapshot()
	encoded, err := wire.AppendFrame(nil, wireBenchFrame(), table)
	if err != nil {
		b.Fatal(err)
	}
	dec := wire.NewDecoder(bufio.NewReader(&loopReader{data: encoded}), table)
	var f wire.Frame
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(&f); err != nil {
			b.Fatal(err)
		}
	}
}

func microEchoBody(inv *alps.Invocation) error {
	inv.Return(inv.Param(0))
	return nil
}

func microUnmanaged(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: microEchoBody}))
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P", i); err != nil {
			b.Fatal(err)
		}
	}
}

func microManagedExecute(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: microEchoBody}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, alps.Intercept("P")),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P", i); err != nil {
			b.Fatal(err)
		}
	}
}

// microManagedExecute8C is managed-execute under 8 concurrent callers:
// the batched-mailbox shape, where arrivals pile into the intake list and
// the manager drains them in one wakeup.
func microManagedExecute8C(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 64, Body: microEchoBody}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, alps.Intercept("P")),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	const clients = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := obj.Call("P", i); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// microShardGroup measures group throughput with Execute-serialized
// 100µs bodies at 64 clients — the E14 shape as a JSON micro, so the
// 1→8 shard scaling factor is recorded in the checked-in baselines.
func microShardGroup(b *testing.B, shards int) {
	b.ReportAllocs()
	const bodyCost = 100 * time.Microsecond
	g, err := shard.New("Service", shards,
		func(i int, name string) (*alps.Object, error) {
			return alps.New(name,
				alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1,
					Body: func(inv *alps.Invocation) error {
						time.Sleep(bodyCost)
						inv.Return(inv.Param(0))
						return nil
					}}),
				alps.WithManager(func(m *alps.Mgr) {
					_ = m.Loop(alps.OnAccept("P", func(a *alps.Accepted) {
						_, _ = m.Execute(a)
					}))
				}, alps.Intercept("P")),
			)
		})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	const clients = 64
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := g.Call("P", i); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func microShardGroup1(b *testing.B) { microShardGroup(b, 1) }
func microShardGroup8(b *testing.B) { microShardGroup(b, 8) }

func microManagedCombining(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("X",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Body: microEchoBody}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("P")
				if err != nil {
					return
				}
				if err := m.FinishAccepted(a, a.Params[0]); err != nil {
					return
				}
			}
		}, alps.InterceptPR("P", 1, 1)),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P", i); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCounter is the replicated state machine behind the replication
// micros: a single counter, so every committed entry does trivial work
// and the measurement is the consensus pipeline, not the object body.
// "Get" reads the counter without mutating it — the entry the ReadIndex
// fast path classifies as read-only.
type benchCounter struct {
	mu sync.Mutex
	n  uint64
}

func (o *benchCounter) CallCtx(_ context.Context, entry string, _ ...any) ([]any, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if entry != "Get" {
		o.n++
	}
	return []any{o.n}, nil
}

// startReplBench boots a 3-member replication group over simnet, waits
// out the first election, and returns a multiplexed client dialed at the
// leader. All replication micros share this fixture so their numbers
// differ only in workload shape.
func startReplBench(b *testing.B, readOnly func(string) bool) *rpc.Remote {
	b.Helper()
	nw := simnet.New(simnet.Config{Seed: 7})
	ids := []string{"A", "B", "C"}
	peers := map[string]string{"A": "A", "B": "B", "C": "C"}
	reps := make([]*replica.Replica, 0, len(ids))
	nodes := make([]*rpc.Node, 0, len(ids))
	b.Cleanup(func() {
		for _, r := range reps {
			r.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	})
	for _, id := range ids {
		id := id
		rep, err := replica.New(replica.Config{
			ID:    id,
			Group: "KV",
			Peers: peers,
			Dial: func(addr string) (net.Conn, error) {
				return nw.DialFrom(id, addr)
			},
			ElectionTimeout: 60 * time.Millisecond,
			Seed:            7,
			ReadOnly:        readOnly,
		}, &benchCounter{})
		if err != nil {
			b.Fatal(err)
		}
		reps = append(reps, rep)
		node := rpc.NewNode(id)
		if err := rep.Publish(node); err != nil {
			b.Fatal(err)
		}
		lis, err := nw.Listen(id)
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = node.Serve(lis) }()
		nodes = append(nodes, node)
	}

	// Wait out the first election so the timed region is steady-state
	// replication, not leader discovery.
	leader := ""
	for deadline := time.Now().Add(3 * time.Second); leader == "" && time.Now().Before(deadline); {
		for i, r := range reps {
			if role, _, _ := r.Status(); role == replica.Leader {
				leader = ids[i]
				break
			}
		}
		if leader == "" {
			time.Sleep(time.Millisecond)
		}
	}
	if leader == "" {
		b.Fatal("no leader elected")
	}
	conn, err := nw.DialFrom("bench-client", leader)
	if err != nil {
		b.Fatal(err)
	}
	rem := rpc.DialConnWith(conn, rpc.DialOptions{ClientID: "bench-client"})
	b.Cleanup(rem.Close)
	return rem
}

// microReplicatedCall measures a committed call through a 3-member
// replication group over simnet: client -> leader -> quorum append ->
// apply -> reply. Against E10RemoteCall/local this prices what consensus
// costs per call; it is the headline the fast-path work must not ratchet.
func microReplicatedCall(b *testing.B) {
	b.ReportAllocs()
	rem := startReplBench(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.Call("KV", "Inc"); err != nil {
			b.Fatal(err)
		}
	}
}

// microReplicatedCallN drives the group with n concurrent clients over
// one multiplexed connection — the shape where proposal combining and
// the pipelined AppendEntries window earn their keep: many proposals in
// flight coalesce into shared append+replicate rounds instead of paying
// one quorum round-trip each.
func microReplicatedCallN(b *testing.B, clients int) {
	b.ReportAllocs()
	rem := startReplBench(b, nil)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := rem.Call("KV", "Inc"); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func microReplicatedCall1(b *testing.B)  { microReplicatedCallN(b, 1) }
func microReplicatedCall8(b *testing.B)  { microReplicatedCallN(b, 8) }
func microReplicatedCall64(b *testing.B) { microReplicatedCallN(b, 64) }

// microReplicatedRead prices the ReadIndex fast path: a quorum-checked
// linearizable read served from leader state with no log append, no
// journal sync and no per-read replication. Compare against
// ReplicatedCall/replicas=3 — the gap is what skipping the log buys.
func microReplicatedRead(b *testing.B) {
	b.ReportAllocs()
	rem := startReplBench(b, func(entry string) bool { return entry == "Get" })
	// Commit one write so reads observe real state through the barrier.
	if _, err := rem.Call("KV", "Inc"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.Call("KV", "Get"); err != nil {
			b.Fatal(err)
		}
	}
}

// microReplicatedRead64 is the read path at its intended operating
// point: one leadership-confirmation round covers every read registered
// before its ack lands, so 64 concurrent readers share heartbeat rounds
// instead of paying one quorum round-trip each.
func microReplicatedRead64(b *testing.B) {
	b.ReportAllocs()
	rem := startReplBench(b, func(entry string) bool { return entry == "Get" })
	if _, err := rem.Call("KV", "Inc"); err != nil {
		b.Fatal(err)
	}
	const clients = 64
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := rem.Call("KV", "Get"); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func microChannel(b *testing.B) {
	b.ReportAllocs()
	c := alps.NewChan("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(i); err != nil {
			b.Fatal(err)
		}
		if _, ok := c.TryRecv(); !ok {
			b.Fatal("lost message")
		}
	}
}

func microGuardWidth(b *testing.B) {
	b.ReportAllocs()
	obj, err := alps.New("Wide",
		alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 4096,
			Body: microEchoBody}),
		alps.WithManager(func(m *alps.Mgr) {
			_ = m.Loop(
				alps.OnAccept("P", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err != nil {
						return
					}
				}),
			)
		}, alps.Intercept("P")),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("P", i); err != nil {
			b.Fatal(err)
		}
	}
}

func microSimnetLink(b *testing.B) {
	b.ReportAllocs()
	network := simnet.New(simnet.Config{})
	lis, err := network.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	conn, err := network.Dial("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
