// Command alpsclient calls objects hosted by an alpsd node.
//
// Usage:
//
//	alpsclient -addr 127.0.0.1:7100 list
//	alpsclient -addr 127.0.0.1:7100 search hello world
//	alpsclient -addr 127.0.0.1:7100 deposit 42
//	alpsclient -addr 127.0.0.1:7100 remove
//	alpsclient -addr 127.0.0.1:7100 write 3 99
//	alpsclient -addr 127.0.0.1:7100 read 3
//	alpsclient -addr 127.0.0.1:7100 print report.ps 12
//
// A comma-separated -addr targets a replication group: the client dials
// the first reachable member and bounces to the next on a link death or
// a not-leader rejection, retrying with the same at-most-once identity:
//
//	alpsclient -addr 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 \
//	    -retries 20 put region eu-west
//	alpsclient -addr 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 get region
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/rpc"
)

// Exit codes for scriptable error handling: overload is retryable, poison
// is terminal (docs/SUPERVISION.md).
const (
	exitErr      = 1 // generic failure
	exitOverload = 3 // server shed the call (core.ErrOverload); safe to retry
	exitPoisoned = 4 // object poisoned (core.ErrObjectPoisoned); do not retry
	exitGap      = 5 // fabric sequence gap (fabric.GapError): an oracle-grade
	//                 ordering failure — do not retry, report it
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		var gap *fabric.GapError
		switch {
		case errors.As(err, &gap):
			fmt.Fprintf(os.Stderr, "alpsclient: %v\n", err)
			fmt.Fprintln(os.Stderr, "alpsclient: the fabric refused an out-of-sequence append; this client's"+
				" stream and the server ledger disagree — an ordering failure, not a transient.")
			os.Exit(exitGap)
		case errors.Is(err, core.ErrOverload):
			fmt.Fprintf(os.Stderr, "alpsclient: %v\n", err)
			fmt.Fprintln(os.Stderr, "alpsclient: the node shed the call because the entry's pending bound"+
				" (alpsd -max-pending) is full; the call did not execute. Retry with backoff"+
				" (-retries N) or raise the server's -max-pending.")
			os.Exit(exitOverload)
		case errors.Is(err, core.ErrObjectPoisoned):
			fmt.Fprintf(os.Stderr, "alpsclient: %v\n", err)
			fmt.Fprintln(os.Stderr, "alpsclient: the object's manager died and the object is poisoned;"+
				" retrying cannot help. Restart alpsd, or run it with -manager-policy restart"+
				" so crashed managers recover in place.")
			os.Exit(exitPoisoned)
		default:
			fmt.Fprintln(os.Stderr, "alpsclient:", err)
			os.Exit(exitErr)
		}
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("alpsclient", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "node address; comma-separate a replication group's members")
	timeout := fs.Duration("timeout", 10*time.Second, "dial, list and per-call deadline")
	retries := fs.Int("retries", 0, "retries after a transport failure (at-most-once safe)")
	clientID := fs.String("client", "alpsclient", "at-most-once client identity for fabric appends")
	fabricMembers := fs.String("fabric-members", "", `fabric epoch-0 ring membership "id=host:port,..." (fabric-* commands); newer rings are adopted from the nodes`)
	fabricSeed := fs.Uint64("fabric-seed", 1, "fabric ring placement seed; must match the cluster's")
	fabricVNodes := fs.Int("fabric-vnodes", 0, "fabric ring virtual nodes per member, 0 = default")
	loadFor := fs.Duration("load-deadline", 2*time.Minute, "fabric-load: total budget to push every stream through chaos")
	loadPace := fs.Duration("load-pace", 0, "fabric-load: mean delay between a stream's appends (jittered); 0 = full speed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (list, search, deposit, remove, read, write, put, get, print, call, fabric-*)")
	}

	if strings.HasPrefix(rest[0], "fabric-") {
		return runFabric(fabricConfig{
			members: *fabricMembers,
			seed:    *fabricSeed,
			vnodes:  *fabricVNodes,
			client:  *clientID,
			timeout: *timeout,
			loadFor: *loadFor,
			pace:    *loadPace,
		}, rest)
	}

	opts := rpc.DialOptions{
		Timeout:     *timeout,
		ListTimeout: *timeout,
		Retry:       rpc.RetryPolicy{Max: *retries},
	}
	var rem *rpc.Remote
	var err error
	if addrs := strings.Split(*addr, ","); len(addrs) > 1 {
		rem, err = rpc.DialMulti(addrs, opts)
	} else {
		rem, err = rpc.DialWith(*addr, opts)
	}
	if err != nil {
		return err
	}
	defer rem.Close()
	call := func(object, entry string, params ...any) ([]any, error) {
		return rem.CallWith(context.Background(), rpc.CallOptions{Deadline: *timeout}, object, entry, params...)
	}

	switch cmd := rest[0]; cmd {
	case "list":
		names, err := rem.List()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "search":
		if len(rest) < 2 {
			return fmt.Errorf("search needs at least one word")
		}
		for _, word := range rest[1:] {
			res, err := call("Dictionary", "Search", word)
			if err != nil {
				return err
			}
			fmt.Printf("%s -> %v\n", word, res[0])
		}
		return nil

	case "deposit":
		if len(rest) != 2 {
			return fmt.Errorf("deposit needs one value")
		}
		if _, err := call("Buffer", "Deposit", rest[1]); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil

	case "remove":
		res, err := call("Buffer", "Remove")
		if err != nil {
			return err
		}
		fmt.Printf("%v\n", res[0])
		return nil

	case "put":
		if len(rest) != 3 {
			return fmt.Errorf("put needs a key and a value")
		}
		res, err := call("Registry", "Put", rest[1], rest[2])
		if err != nil {
			return err
		}
		fmt.Printf("ok (%v keys)\n", res[0])
		return nil

	case "get":
		if len(rest) != 2 {
			return fmt.Errorf("get needs a key")
		}
		res, err := call("Registry", "Get", rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("%v\n", res[0])
		return nil

	case "call":
		// Generic: call OBJECT ENTRY [string args...] — for objects loaded
		// from a definition file (pure synchronization entries).
		if len(rest) < 3 {
			return fmt.Errorf("call needs an object and an entry")
		}
		params := make([]any, 0, len(rest)-3)
		for _, arg := range rest[3:] {
			params = append(params, arg)
		}
		res, err := call(rest[1], rest[2], params...)
		if err != nil {
			return err
		}
		if len(res) == 0 {
			fmt.Println("ok")
		} else {
			fmt.Printf("%v\n", res)
		}
		return nil

	case "print":
		if len(rest) != 3 {
			return fmt.Errorf("print needs a file name and a page count")
		}
		pages, err := strconv.Atoi(rest[2])
		if err != nil {
			return fmt.Errorf("pages: %w", err)
		}
		res, err := call("Spooler", "Print", rest[1], pages)
		if err != nil {
			return err
		}
		fmt.Printf("printed on printer %v\n", res[0])
		return nil

	case "read":
		if len(rest) != 2 {
			return fmt.Errorf("read needs a key")
		}
		key, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("key: %w", err)
		}
		res, err := call("Database", "Read", key)
		if err != nil {
			return err
		}
		if ok := res[1].(bool); !ok {
			fmt.Println("(not found)")
			return nil
		}
		fmt.Printf("%v\n", res[0])
		return nil

	case "write":
		if len(rest) != 3 {
			return fmt.Errorf("write needs a key and a value")
		}
		key, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("key: %w", err)
		}
		val, err := strconv.Atoi(rest[2])
		if err != nil {
			return fmt.Errorf("value: %w", err)
		}
		if _, err := call("Database", "Write", key, val); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
