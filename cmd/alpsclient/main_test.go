package main

import (
	"testing"

	"repro/internal/objects/buffer"
	"repro/internal/objects/dict"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/rpc"
)

func startNode(t *testing.T) string {
	t.Helper()
	d, err := dict.New(dict.Options{SearchMax: 8, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	b, err := buffer.New(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	db, err := rwdb.New(rwdb.Config{ReadMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })

	node := rpc.NewNode("test")
	if err := node.Publish(d.Object()); err != nil {
		t.Fatal(err)
	}
	if err := node.Publish(b.Object()); err != nil {
		t.Fatal(err)
	}
	if err := node.Publish(db.Object()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestClientCommands(t *testing.T) {
	addr := startNode(t)
	commands := [][]string{
		{"-addr", addr, "list"},
		{"-addr", addr, "search", "hello", "world"},
		{"-addr", addr, "deposit", "42"},
		{"-addr", addr, "remove"},
		{"-addr", addr, "write", "3", "99"},
		{"-addr", addr, "read", "3"},
		{"-addr", addr, "read", "7777"}, // not found, still ok
	}
	for _, args := range commands {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestClientErrors(t *testing.T) {
	addr := startNode(t)
	bad := [][]string{
		{"-addr", addr},                       // no command
		{"-addr", addr, "unknown"},            // unknown command
		{"-addr", addr, "search"},             // missing word
		{"-addr", addr, "deposit"},            // missing value
		{"-addr", addr, "deposit", "a", "b"},  // too many values
		{"-addr", addr, "read"},               // missing key
		{"-addr", addr, "read", "notanumber"}, // bad key
		{"-addr", addr, "write", "1"},         // missing value
		{"-addr", addr, "write", "x", "1"},    // bad key
		{"-addr", addr, "write", "1", "y"},    // bad value
		{"-badflag"},                          // flag error
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestClientUnreachableNode(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:1", "list"}); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestClientTimeoutAndRetryFlags(t *testing.T) {
	addr := startNode(t)
	commands := [][]string{
		{"-addr", addr, "-timeout", "5s", "-retries", "2", "search", "hello"},
		{"-addr", addr, "-timeout", "250ms", "list"},
		{"-addr", addr, "-retries", "1", "deposit", "7"},
		{"-addr", addr, "-retries", "1", "remove"},
	}
	for _, args := range commands {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-addr", addr, "-timeout", "nonsense", "list"}); err == nil {
		t.Error("bad -timeout accepted")
	}
	// Retries against a dead address still fail, but only after the retry
	// budget — and they must return an error, not hang.
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "2s", "-retries", "2", "list"}); err == nil {
		t.Error("retried dial to dead address succeeded")
	}
}

func TestClientPrintCommand(t *testing.T) {
	addr := startNodeWithSpooler(t)
	if err := run([]string{"-addr", addr, "print", "doc.ps", "2"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-addr", addr, "print", "doc.ps"},
		{"-addr", addr, "print", "doc.ps", "x"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) succeeded, want error", bad)
		}
	}
}

func startNodeWithSpooler(t *testing.T) string {
	t.Helper()
	sp, err := spooler.New(spooler.Config{Printers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sp.Close() })
	node := rpc.NewNode("test-sp")
	if err := node.Publish(sp.Object()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestClientGenericCall(t *testing.T) {
	addr := startNodeWithSpooler(t)
	// Generic call against the spooler's Print entry with string args would
	// fail arity/type checks; use errors to verify plumbing.
	if err := run([]string{"-addr", addr, "call"}); err == nil {
		t.Error("call without object/entry succeeded")
	}
	if err := run([]string{"-addr", addr, "call", "Ghost", "x"}); err == nil {
		t.Error("call to unknown object succeeded")
	}
}
