// Fabric subcommands: keyed appends, audits, resharding and the seeded
// traffic driver the black-box chaos harness runs against a fabric
// cluster (internal/fabric/e2e, docs/FABRIC.md).
//
//	alpsclient -fabric-members "n0=...,n1=..." fabric-append KEY SEQ
//	alpsclient -fabric-members ... fabric-audit KEY
//	alpsclient -fabric-members ... fabric-ring MEMBER
//	alpsclient -fabric-members ... fabric-status MEMBER
//	alpsclient -fabric-members ... fabric-reshard EPOCH "n0=...,n1=...,n2=..." [SEED]
//	alpsclient -fabric-members ... -client c0 \
//	    fabric-load PREFIX KEYS SEQS LEDGER.json [JITTER_SEED]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/workload"
)

type fabricConfig struct {
	members string
	seed    uint64
	vnodes  int
	client  string
	timeout time.Duration
	loadFor time.Duration
	pace    time.Duration
}

// ringSpec builds the epoch-0 spec the cluster was booted with; routers
// adopt any newer ring from the nodes' wrong-owner hints.
func (c fabricConfig) ringSpec() (string, error) {
	if c.members == "" {
		return "", fmt.Errorf("fabric commands need -fabric-members")
	}
	members, err := parseMembers(c.members)
	if err != nil {
		return "", err
	}
	ring, err := fabric.NewRing(0, c.seed, c.vnodes, members)
	if err != nil {
		return "", err
	}
	return ring.Spec(), nil
}

// parseMembers parses "id=host:port,..." (the alpsd -fabric-members
// format).
func parseMembers(spec string) (map[string]string, error) {
	members := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad member %q (want id=host:port)", part)
		}
		if _, dup := members[id]; dup {
			return nil, fmt.Errorf("duplicate member %q", id)
		}
		members[id] = addr
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("no members in %q", spec)
	}
	return members, nil
}

func runFabric(cfg fabricConfig, rest []string) error {
	spec, err := cfg.ringSpec()
	if err != nil {
		return err
	}
	router, err := fabric.NewRouter(spec, fabric.RouterOptions{
		ClientID:    cfg.client,
		DialTimeout: cfg.timeout,
	})
	if err != nil {
		return err
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	switch cmd := rest[0]; cmd {
	case "fabric-append":
		if len(rest) != 3 {
			return fmt.Errorf("fabric-append needs a key and a sequence number")
		}
		seq, err := strconv.ParseUint(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("seq: %w", err)
		}
		exec, err := router.Append(ctx, rest[1], seq, nil)
		if err != nil {
			return err
		}
		fmt.Printf("ok key=%s seq=%d node=%s epoch=%d count=%d info=%q\n",
			exec.Key, exec.Seq, exec.Node, exec.Epoch, exec.Count, exec.Info)
		return nil

	case "fabric-audit":
		if len(rest) != 2 {
			return fmt.Errorf("fabric-audit needs a key")
		}
		a, err := router.Audit(ctx, rest[1])
		if err != nil {
			return err
		}
		b, err := json.Marshal(a)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil

	case "fabric-ring":
		if len(rest) != 2 {
			return fmt.Errorf("fabric-ring needs a member id")
		}
		memberSpec, _, _, err := router.Status(ctx, rest[1])
		if err != nil {
			return err
		}
		fmt.Println(memberSpec)
		return nil

	case "fabric-status":
		if len(rest) != 2 {
			return fmt.Errorf("fabric-status needs a member id")
		}
		memberSpec, completed, settled, err := router.Status(ctx, rest[1])
		if err != nil {
			return err
		}
		vec, err := json.Marshal(settled)
		if err != nil {
			return err
		}
		fmt.Printf("ring=%q completed=%d settled=%s\n", memberSpec, completed, vec)
		return nil

	case "fabric-reshard":
		if len(rest) != 3 && len(rest) != 4 {
			return fmt.Errorf(`fabric-reshard needs an epoch and a member list "id=host:port,..." (and optionally the new ring's placement seed)`)
		}
		epoch, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			return fmt.Errorf("epoch: %w", err)
		}
		members, err := parseMembers(rest[2])
		if err != nil {
			return err
		}
		seed := cfg.seed
		if len(rest) == 4 {
			// A different seed re-places every key: the chaos harness uses it
			// to make each reshard a real migration, not just an epoch bump.
			seed, err = strconv.ParseUint(rest[3], 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %w", err)
			}
		}
		ring, err := fabric.NewRing(epoch, seed, cfg.vnodes, members)
		if err != nil {
			return err
		}
		acked, err := router.Reshard(ctx, ring.Spec())
		if err != nil {
			return err
		}
		fmt.Printf("resharded to epoch %d: %d members acked\n", epoch, acked)
		return nil

	case "fabric-load":
		return runFabricLoad(cfg, spec, rest[1:])

	default:
		return fmt.Errorf("unknown fabric command %q", cmd)
	}
}

// loadLedger is the client-side ledger fabric-load writes: every
// acknowledged execution in ack order, for the harness to merge into the
// conformance oracle.
type loadLedger struct {
	Client string        `json:"client"`
	Execs  []fabric.Exec `json:"execs"`
	// Incomplete lists streams that did not push every sequence number
	// through before the deadline (key -> next unacked seq). The harness
	// fails the run if any remain after chaos heals.
	Incomplete map[string]uint64 `json:"incomplete,omitempty"`
}

// runFabricLoad drives KEYS concurrent per-key append streams of SEQS
// calls each, jittered by JITTER_SEED, retrying each append through
// overloads, node deaths and handoffs until it is acknowledged or the
// -load-deadline expires. The resulting ledger is written to LEDGER.json.
// A sequence gap aborts immediately: it means the at-most-once ledger and
// this client disagree, which is exactly what the oracle exists to catch.
func runFabricLoad(cfg fabricConfig, spec string, args []string) error {
	if len(args) != 4 && len(args) != 5 {
		return fmt.Errorf("fabric-load needs PREFIX KEYS SEQS LEDGER.json [JITTER_SEED]")
	}
	prefix := args[0]
	keys, err := strconv.Atoi(args[1])
	if err != nil || keys <= 0 {
		return fmt.Errorf("keys: %q", args[1])
	}
	seqs, err := strconv.Atoi(args[2])
	if err != nil || seqs <= 0 {
		return fmt.Errorf("seqs: %q", args[2])
	}
	ledgerPath := args[3]
	var jitterSeed uint64 = 1
	if len(args) == 5 {
		jitterSeed, err = strconv.ParseUint(args[4], 10, 64)
		if err != nil {
			return fmt.Errorf("jitter seed: %w", err)
		}
	}

	router, err := fabric.NewRouter(spec, fabric.RouterOptions{
		ClientID:    cfg.client,
		DialTimeout: cfg.timeout,
	})
	if err != nil {
		return err
	}
	defer router.Close()
	deadline := time.Now().Add(cfg.loadFor)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	ledger := loadLedger{Client: cfg.client, Incomplete: make(map[string]uint64)}
	var mu sync.Mutex
	var firstGap error
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("%s-%d", prefix, k)
			rng := workload.NewRNG(jitterSeed ^ uint64(k)*0x9e3779b97f4a7c15)
			for seq := uint64(0); seq < uint64(seqs); seq++ {
				for {
					exec, err := router.Append(ctx, key, seq, nil)
					if err == nil {
						mu.Lock()
						ledger.Execs = append(ledger.Execs, exec)
						mu.Unlock()
						break
					}
					var gap *fabric.GapError
					if errors.As(err, &gap) {
						mu.Lock()
						if firstGap == nil {
							firstGap = err
						}
						ledger.Incomplete[key] = seq
						mu.Unlock()
						return
					}
					var over *fabric.OverloadError
					switch {
					case errors.As(err, &over):
						// Shed pre-execution: honour the hint, same seq.
						time.Sleep(over.RetryAfter)
					case ctx.Err() != nil:
						mu.Lock()
						ledger.Incomplete[key] = seq
						mu.Unlock()
						return
					default:
						// Retries exhausted mid-chaos (dead node, settling
						// ring): back off and push the same seq again.
						time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
					}
				}
				// Pace/jitter between appends so streams interleave with
				// chaos actions instead of racing ahead of them.
				if cfg.pace > 0 {
					ms := int(cfg.pace / time.Millisecond)
					time.Sleep(cfg.pace/2 + time.Duration(rng.Intn(ms+1))*time.Millisecond)
				} else if j := rng.Intn(3); j > 0 {
					time.Sleep(time.Duration(j) * time.Millisecond)
				}
			}
		}(k)
	}
	wg.Wait()

	b, err := json.MarshalIndent(ledger, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(ledgerPath, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("fabric-load %s: %d acks across %d keys, %d incomplete streams -> %s\n",
		cfg.client, len(ledger.Execs), keys, len(ledger.Incomplete), ledgerPath)
	if firstGap != nil {
		return firstGap
	}
	if len(ledger.Incomplete) > 0 {
		return fmt.Errorf("fabric-load: %d streams incomplete at deadline", len(ledger.Incomplete))
	}
	return nil
}
