// Command benchcheck compares two alpsbench JSON snapshots and fails when
// a watched micro benchmark regressed beyond a threshold. CI runs it with
// the fresh bench-smoke snapshot against the checked-in baseline so a PR
// that slows the hot paths fails visibly instead of silently ratcheting
// the baseline:
//
//	benchcheck -baseline BENCH_PR4.json -current bench-ci.json
//	benchcheck -baseline a.json -current b.json -threshold 0.10 \
//	    -watch 'E1BoundedBuffer/alps-manager,ManagerPrimitives/managed-execute'
//
// Exit status: 0 when every watched benchmark is present in both files and
// within threshold, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// defaultWatch lists the micro benchmarks gated by default: the paper's
// headline E1 hot path, the manager Execute pipeline, the remote-call
// path, the pipelined transport headline the wire codec bought, and the
// replication fast paths — the single-client committed call, the
// 64-client combined/pipelined throughput shape, and the ReadIndex
// quorum-checked read — the paths the roadmap optimizes hardest.
const defaultWatch = "E1BoundedBuffer/alps-manager,ManagerPrimitives/managed-execute,E10RemoteCall/remote-tcp,RemotePipelined/clients=64-conns=1,ReplicatedCall/replicas=3,ReplicatedCall/clients=64,ReplicatedRead/replicas=3"

// benchFile mirrors the subset of cmd/alpsbench's JSON schema we need.
type benchFile struct {
	Label string `json:"label"`
	Micro []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"micro"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "", "baseline JSON (checked-in BENCH_*.json)")
		curPath   = fs.String("current", "", "candidate JSON (fresh alpsbench snapshot)")
		threshold = fs.Float64("threshold", 0.15, "maximum tolerated ns/op increase (0.15 = +15%)")
		watch     = fs.String("watch", defaultWatch, "comma-separated micro benchmark names to gate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}

	var failures []string
	fmt.Fprintf(out, "benchcheck: %s (%s) vs %s (%s), threshold +%.0f%%\n",
		*curPath, cur.Label, *basePath, base.Label, *threshold*100)
	for _, name := range strings.Split(*watch, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, bok := lookup(base, name)
		c, cok := lookup(cur, name)
		switch {
		case !bok:
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", name))
		case !cok:
			failures = append(failures, fmt.Sprintf("%s: missing from current snapshot", name))
		default:
			delta := c/b - 1
			status := "ok"
			if delta > *threshold {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.1f ns/op -> %.1f ns/op (%+.1f%%)",
					name, b, c, delta*100))
			}
			fmt.Fprintf(out, "  %-45s %10.1f -> %10.1f ns/op  %+6.1f%%  %s\n",
				name, b, c, delta*100, status)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d watched benchmark(s) failed:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func lookup(f *benchFile, name string) (float64, bool) {
	for _, m := range f.Micro {
		if m.Name == name {
			return m.NsPerOp, true
		}
	}
	return 0, false
}
