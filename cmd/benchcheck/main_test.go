package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseJSON = `{"label":"base","micro":[
	{"name":"E1BoundedBuffer/alps-manager","ns_per_op":1000},
	{"name":"ManagerPrimitives/managed-execute","ns_per_op":2000},
	{"name":"E10RemoteCall/remote-tcp","ns_per_op":50000},
	{"name":"RemotePipelined/clients=64-conns=1","ns_per_op":3000},
	{"name":"ReplicatedCall/replicas=3","ns_per_op":45000},
	{"name":"ReplicatedCall/clients=64","ns_per_op":8000},
	{"name":"ReplicatedRead/replicas=3","ns_per_op":12000}]}`

func check(t *testing.T, curJSON string, extra ...string) error {
	t.Helper()
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", baseJSON)
	cur := writeJSON(t, dir, "cur.json", curJSON)
	args := append([]string{"-baseline", base, "-current", cur}, extra...)
	return run(args, os.Stdout)
}

func TestWithinThresholdPasses(t *testing.T) {
	err := check(t, `{"label":"cur","micro":[
		{"name":"E1BoundedBuffer/alps-manager","ns_per_op":1100},
		{"name":"ManagerPrimitives/managed-execute","ns_per_op":1500},
		{"name":"E10RemoteCall/remote-tcp","ns_per_op":51000},
		{"name":"RemotePipelined/clients=64-conns=1","ns_per_op":3100},
		{"name":"ReplicatedCall/replicas=3","ns_per_op":46000},
		{"name":"ReplicatedCall/clients=64","ns_per_op":8200},
		{"name":"ReplicatedRead/replicas=3","ns_per_op":12500}]}`)
	if err != nil {
		t.Fatalf("within-threshold run failed: %v", err)
	}
}

func TestRegressionFails(t *testing.T) {
	err := check(t, `{"label":"cur","micro":[
		{"name":"E1BoundedBuffer/alps-manager","ns_per_op":1200},
		{"name":"ManagerPrimitives/managed-execute","ns_per_op":2000},
		{"name":"E10RemoteCall/remote-tcp","ns_per_op":50000},
		{"name":"RemotePipelined/clients=64-conns=1","ns_per_op":3000},
		{"name":"ReplicatedCall/replicas=3","ns_per_op":45000},
		{"name":"ReplicatedCall/clients=64","ns_per_op":8000},
		{"name":"ReplicatedRead/replicas=3","ns_per_op":12000}]}`)
	if err == nil {
		t.Fatal("20% regression passed")
	}
	if !strings.Contains(err.Error(), "E1BoundedBuffer/alps-manager") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	err := check(t, `{"label":"cur","micro":[
		{"name":"E1BoundedBuffer/alps-manager","ns_per_op":1000}]}`)
	if err == nil {
		t.Fatal("missing watched benchmarks passed")
	}
}

func TestCustomWatchAndThreshold(t *testing.T) {
	// Only watch E1 with a loose threshold: the 10x managed-execute
	// regression must be ignored, the 18% E1 one tolerated at 0.20.
	err := check(t, `{"label":"cur","micro":[
		{"name":"E1BoundedBuffer/alps-manager","ns_per_op":1180},
		{"name":"ManagerPrimitives/managed-execute","ns_per_op":20000}]}`,
		"-watch", "E1BoundedBuffer/alps-manager", "-threshold", "0.20")
	if err != nil {
		t.Fatalf("custom watch run failed: %v", err)
	}
}
