// Command alpsd is a node daemon: it hosts ALPS objects — the combining
// dictionary (§2.7.1), a bounded buffer (§2.4.1) and the readers-writers
// database (§2.5.1) — behind a TCP listener, making their entry procedures
// callable as remote procedure calls (paper §1, §3). Use cmd/alpsclient to
// talk to it.
//
// Usage:
//
//	alpsd -addr 127.0.0.1:7100
//	alpsd -addr 127.0.0.1:7100 -defs coord.defs   # also host declarative
//	                                              # coordination objects
//	alpsd -addr 127.0.0.1:7100 -data-dir /var/lib/alpsd
//	                                              # durable database: acknowledged
//	                                              # writes survive kill -9
//	alpsd -addr 127.0.0.1:7100 -replica-id A \
//	      -peers "A=127.0.0.1:7100,B=127.0.0.1:7101,C=127.0.0.1:7102"
//	                                              # member A of a consensus-replicated
//	                                              # Registry group (docs/REPLICATION.md);
//	                                              # add -join when restarting a crashed
//	                                              # member into a live group
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	alps "repro"
	"repro/internal/defs"
	"repro/internal/fabric"
	"repro/internal/objects/buffer"
	"repro/internal/objects/dict"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/rpc"
	"repro/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "alpsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, bound, err := newServer(args)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("alpsd listening on %s\n", bound)
	fmt.Printf("objects: %v\n", srv.node.Objects())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

// server bundles the node and its hosted objects so tests can start and
// stop a daemon in-process.
type server struct {
	node  *rpc.Node
	nm    *rpc.Metrics // node transport + supervision counters, reported at drain
	d     *dict.Dict   // single dictionary (-shards 1)
	dg    *shard.Group // sharded dictionary (-shards > 1)
	b     *buffer.Buffer
	db    *rwdb.DB
	sp    *spooler.Spooler
	store *alps.DurableStore // nil unless -data-dir is set
	reg   *alps.Object       // replicated registry (-peers)
	rep   *alps.Replica      // this node's replication-group member
	fh    *fabric.Host       // cross-process shard fabric member (-fabric-id)

	defObjs []*alps.Object
}

// newServer parses flags, builds the objects and starts serving. It
// returns the bound address.
func newServer(args []string) (*server, string, error) {
	fs := flag.NewFlagSet("alpsd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7100", "listen address")
		name       = fs.String("name", "alpsd", "node name")
		searchCost = fs.Duration("search-cost", 2*time.Millisecond, "simulated dictionary search time")
		shards     = fs.Int("shards", 1, "dictionary shard count; >1 hosts a key-affine shard group under the same name")
		bufSlots   = fs.Int("buffer-slots", 16, "bounded buffer capacity")
		readMax    = fs.Int("read-max", 8, "database ReadMax")
		printers   = fs.Int("printers", 2, "spooler printer pool size")
		pageCost   = fs.Duration("page-cost", time.Millisecond, "simulated print time per page")
		defsPath   = fs.String("defs", "", "definition file of additional coordination objects")

		// Durability (docs/DURABILITY.md).
		dataDir   = fs.String("data-dir", "", "durability directory for the database's write-ahead ledger; empty = durability off")
		syncIv    = fs.Duration("sync", 0, "background fsync interval for journaled outcomes; 0 = sync only on demand (each acknowledged call group-commits)")
		snapEvery = fs.Int("snapshot-every", 4096, "journaled records between durability snapshots")

		// Replication (docs/REPLICATION.md).
		replicaID = fs.String("replica-id", "", "this member's ID in a replication group (requires -peers)")
		peersSpec = fs.String("peers", "", `static replication-group membership "id=host:port,..." including this member; hosts the consensus-replicated Registry object`)
		join      = fs.Bool("join", false, "rejoin an existing group quietly: triple this member's election patience so it catches up as a follower instead of forcing an election")

		// Cross-process shard fabric (docs/FABRIC.md).
		fabricID      = fs.String("fabric-id", "", "this node's member ID in the shard fabric (requires -fabric-members)")
		fabricMembers = fs.String("fabric-members", "", `initial fabric ring membership "id=host:port,..." including this member; addresses are what peers and clients dial`)
		fabricSeed    = fs.Uint64("fabric-seed", 1, "fabric ring placement seed; must agree across the cluster")
		fabricEpoch   = fs.Uint64("fabric-epoch", 0, "epoch of the boot ring; a member joining an already-resharded cluster must boot at the new ring's epoch so the settle gate holds")
		fabricVNodes  = fs.Int("fabric-vnodes", 0, "fabric ring virtual nodes per member, 0 = default")
		fabricShards  = fs.Int("fabric-shards", 4, "fabric ledger shards on this node")
		fabricMaxPend = fs.Int("fabric-max-pending", 0, "fabric per-shard pending append bound; beyond it appends are shed with an overload error, 0 = unbounded")

		// Supervision & admission control (docs/SUPERVISION.md).
		mgrPolicy   = fs.String("manager-policy", "failfast", "manager panic policy: failfast (poison) or restart")
		maxRestarts = fs.Int("max-restarts", 5, "restart budget before the object is poisoned (restart policy)")
		maxPending  = fs.Int("max-pending", 0, "per-entry pending-call bound, 0 = unbounded")
		shed        = fs.String("shed", "block", "policy when -max-pending is full: block, reject-newest, reject-oldest")
		callTimeout = fs.Duration("call-timeout", 0, "default deadline for calls arriving without one, 0 = none")
		stallAfter  = fs.Duration("stall-threshold", 0, "stall-watchdog threshold on oldest pending call age, 0 = off")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	oo := alps.ObjectOptions{
		Restart:            alps.RestartPolicy{Max: *maxRestarts},
		MaxPending:         *maxPending,
		DefaultCallTimeout: *callTimeout,
		Watchdog:           alps.WatchdogConfig{Threshold: *stallAfter},
	}
	switch *mgrPolicy {
	case "failfast":
		oo.ManagerPolicy = alps.FailFast
	case "restart":
		oo.ManagerPolicy = alps.Restart
	default:
		return nil, "", fmt.Errorf("unknown -manager-policy %q (failfast, restart)", *mgrPolicy)
	}
	switch *shed {
	case "block":
		oo.Shed = alps.ShedBlock
	case "reject-newest":
		oo.Shed = alps.ShedRejectNewest
	case "reject-oldest":
		oo.Shed = alps.ShedRejectOldest
	default:
		return nil, "", fmt.Errorf("unknown -shed %q (block, reject-newest, reject-oldest)", *shed)
	}
	// One supervision counter set shared by every hosted object and exposed
	// through the node's rpc metrics.
	sup := &alps.SupervisionMetrics{}
	oo.Metrics = sup
	supOpt := alps.WithObjectOptions(oo)

	srv := &server{}
	ok := false
	defer func() {
		if !ok {
			srv.Close()
		}
	}()

	var err error
	if *shards > 1 {
		// Shard the dictionary: one replica per shard, calls routed by the
		// queried word so combining still sees every request for a word on
		// the same replica, published under the usual single name.
		srv.dg, err = shard.New("Dictionary", *shards,
			func(i int, shardName string) (*alps.Object, error) {
				d, err := dict.New(dict.Options{
					Name:       shardName,
					SearchMax:  32,
					SearchCost: *searchCost,
					Combine:    true,
					ObjOpts:    []alps.Option{supOpt},
				})
				if err != nil {
					return nil, err
				}
				return d.Object(), nil
			},
			shard.WithKey("Search", shard.StringKey(0)),
		)
	} else {
		srv.d, err = dict.New(dict.Options{
			SearchMax:  32,
			SearchCost: *searchCost,
			Combine:    true,
			ObjOpts:    []alps.Option{supOpt},
		})
	}
	if err != nil {
		return nil, "", err
	}
	srv.b, err = buffer.New(*bufSlots, supOpt)
	if err != nil {
		return nil, "", err
	}
	// Durability: open the ledger before the database object exists, create
	// the object with its journal attached, then recover — restore the
	// newest snapshot and replay journaled writes through the object's own
	// call surface — before the listener opens.
	var journal *alps.ObjectJournal
	dbOpt := supOpt
	if *dataDir != "" {
		srv.store, err = alps.OpenStore(*dataDir, alps.DurabilityOptions{
			SyncInterval:  *syncIv,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return nil, "", err
		}
		journal = srv.store.Journal("Database", alps.JournalOptions{Skip: rwdb.JournalSkip})
		doo := oo
		doo.Journal = journal
		dbOpt = alps.WithObjectOptions(doo)
	}
	srv.db, err = rwdb.New(rwdb.Config{ReadMax: *readMax, ObjOpts: []alps.Option{dbOpt}})
	if err != nil {
		return nil, "", err
	}
	if journal != nil {
		replayed, rerr := journal.Recover(srv.db.Hooks())
		if rerr != nil {
			return nil, "", rerr
		}
		st := srv.store.Stats()
		fmt.Printf("alpsd: recovered ledger: %d outcomes (%d replayed), %d acks, snapshot@%d, %d torn bytes truncated, %d segments, %s\n",
			st.Outcomes, replayed, st.Acks, st.SnapshotAt, st.TornBytes, st.Segments, st.Duration)
	}
	srv.sp, err = spooler.New(spooler.Config{Printers: *printers, PageCost: *pageCost, ObjOpts: []alps.Option{supOpt}})
	if err != nil {
		return nil, "", err
	}

	srv.nm = &rpc.Metrics{Supervision: sup}
	srv.node = rpc.NewNodeWith(*name, rpc.NodeOptions{
		Metrics: srv.nm,
		Durable: srv.store,
	})
	if srv.dg != nil {
		if err := srv.node.PublishCallable(srv.dg.Name(), srv.dg); err != nil {
			return nil, "", err
		}
	} else if err := srv.node.Publish(srv.d.Object()); err != nil {
		return nil, "", err
	}
	if err := srv.node.Publish(srv.b.Object()); err != nil {
		return nil, "", err
	}
	if err := srv.node.Publish(srv.db.Object()); err != nil {
		return nil, "", err
	}
	if err := srv.node.Publish(srv.sp.Object()); err != nil {
		return nil, "", err
	}
	if *peersSpec != "" || *replicaID != "" || *join {
		if *peersSpec == "" || *replicaID == "" {
			return nil, "", fmt.Errorf("replication needs both -replica-id and -peers")
		}
		peers, perr := parsePeers(*peersSpec)
		if perr != nil {
			return nil, "", perr
		}
		if _, ok := peers[*replicaID]; !ok {
			return nil, "", fmt.Errorf("-replica-id %q is not listed in -peers", *replicaID)
		}
		var snap func() ([]byte, error)
		var restore func([]byte) error
		srv.reg, snap, restore, err = newRegistry(supOpt)
		if err != nil {
			return nil, "", err
		}
		// A rejoining member is slow to campaign: it should catch up as a
		// follower, not force an election on the group it crashed out of.
		et := 150 * time.Millisecond
		if *join {
			et *= 3
		}
		srv.rep, err = alps.ReplicatedObject(srv.node, alps.ReplicaConfig{
			ID:              *replicaID,
			Group:           "Registry",
			Peers:           peers,
			Store:           srv.store,
			ElectionTimeout: et,
			Snapshot:        snap,
			Restore:         restore,
			// Registry lookups are pure reads: serve them on the ReadIndex
			// fast path — no log append, no journal sync, one shared quorum
			// confirmation — instead of replicating every Get.
			ReadOnly: func(entry string) bool { return entry == "Get" },
			Metrics:  srv.nm,
			Logf: func(format string, args ...any) {
				fmt.Printf("alpsd: "+format+"\n", args...)
			},
		}, srv.reg)
		if err != nil {
			return nil, "", err
		}
	}
	if *fabricID != "" || *fabricMembers != "" {
		if *fabricID == "" || *fabricMembers == "" {
			return nil, "", fmt.Errorf("the shard fabric needs both -fabric-id and -fabric-members")
		}
		members, merr := parsePeers(*fabricMembers)
		if merr != nil {
			return nil, "", merr
		}
		// The flags describe the boot ring (epoch 0 for a founding member);
		// a newer ring recovered from the fabric journal (or learned from
		// any peer) supersedes it.
		ring, rerr := fabric.NewRing(*fabricEpoch, *fabricSeed, *fabricVNodes, members)
		if rerr != nil {
			return nil, "", rerr
		}
		fabricDir := ""
		if *dataDir != "" {
			fabricDir = filepath.Join(*dataDir, "fabric")
		}
		srv.fh, err = fabric.NewHost(fabric.HostOptions{
			ID:         *fabricID,
			Spec:       ring.Spec(),
			Shards:     *fabricShards,
			MaxPending: *fabricMaxPend,
			Dir:        fabricDir,
			Logf: func(format string, args ...any) {
				fmt.Printf("alpsd: fabric: "+format+"\n", args...)
			},
		})
		if err != nil {
			return nil, "", err
		}
		if err := srv.node.PublishCallable("fabric", srv.fh); err != nil {
			return nil, "", err
		}
		fmt.Printf("alpsd: fabric member %s, ring %s\n", *fabricID, srv.fh.Spec())
	}
	if *defsPath != "" {
		src, err := os.ReadFile(*defsPath)
		if err != nil {
			return nil, "", err
		}
		srv.defObjs, err = defs.BuildAll(string(src))
		if err != nil {
			return nil, "", err
		}
		for _, obj := range srv.defObjs {
			if err := srv.node.Publish(obj); err != nil {
				return nil, "", err
			}
		}
	}
	bound, err := srv.node.ListenAndServe(*addr)
	if err != nil {
		return nil, "", err
	}
	ok = true
	return srv, bound, nil
}

// parsePeers parses "id=host:port,id=host:port,..." into a peer map.
func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers element %q (want id=host:port)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate member %q in -peers", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// newRegistry builds the object the replication group hosts: a flat
// string registry with non-blocking entries — guards that never park, so
// replicated apply can never stall the group (docs/REPLICATION.md
// §limits). Returns the object plus the snapshot/restore pair log
// compaction and rejoin catch-up use.
func newRegistry(supOpt alps.Option) (*alps.Object, func() ([]byte, error), func([]byte) error, error) {
	var mu sync.Mutex
	data := make(map[string]string)
	obj, err := alps.New("Registry",
		alps.WithEntry(alps.EntrySpec{Name: "Put", Params: 2, Results: 1, Body: func(inv *alps.Invocation) error {
			k, _ := inv.Param(0).(string)
			v, _ := inv.Param(1).(string)
			mu.Lock()
			data[k] = v
			n := len(data)
			mu.Unlock()
			inv.Return(n)
			return nil
		}}),
		alps.WithEntry(alps.EntrySpec{Name: "Get", Params: 1, Results: 1, Body: func(inv *alps.Invocation) error {
			k, _ := inv.Param(0).(string)
			mu.Lock()
			v := data[k]
			mu.Unlock()
			inv.Return(v)
			return nil
		}}),
		supOpt,
	)
	if err != nil {
		return nil, nil, nil, err
	}
	snapshot := func() ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(data); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	restore := func(b []byte) error {
		m := make(map[string]string)
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
			return err
		}
		mu.Lock()
		data = m
		mu.Unlock()
		return nil
	}
	return obj, snapshot, restore, nil
}

// Close tears the node and all hosted objects down.
func (s *server) Close() {
	// The replication member first: it stops proposing and fails parked
	// waiters before the node drains their links.
	if s.rep != nil {
		s.rep.Close()
	}
	if s.node != nil {
		s.node.Close()
	}
	// After the node drained (in-flight fabric calls finished) but before
	// the shared store closes: stop the handoff loop, drop peer
	// connections and sync the fabric journal.
	if s.fh != nil {
		_ = s.fh.Close()
	}
	if m := s.nm; m != nil {
		// Transport totals at drain: flushes vs frames shows how well the
		// combining write queue coalesced (frames/flush ≈ 1 means lock-step
		// callers, tens means saturated pipelining — docs/WIRE.md).
		sent, recv := m.FramesSent.Value(), m.FramesRecv.Value()
		flushes := m.Flushes.Value()
		perFlush := float64(sent)
		if flushes > 0 {
			perFlush = float64(sent) / float64(flushes)
		}
		fmt.Printf("alpsd: transport: %d B out / %d B in, %d frames out / %d in, %d flushes (%.1f frames/flush), %d dedup replays\n",
			m.BytesSent.Value(), m.BytesRecv.Value(), sent, recv, flushes, perFlush, m.DedupHits.Value())
		// Replication fast-path totals (leader-side; zero on followers):
		// proposals vs rounds shows how well the combiner coalesced, the
		// batch/window histograms whether the pipeline actually ran deep,
		// and the read counters how many calls skipped the log entirely.
		if s.rep != nil {
			props, rounds := m.ReplProposals.Value(), m.ReplRounds.Value()
			fmt.Printf("alpsd: replication: %d proposals in %d rounds (%d combined), batch %s, window %s\n",
				props, rounds, m.ReplCombined.Value(), m.ReplBatch.String(), m.ReplWindow.String())
			fmt.Printf("alpsd: replication reads: %d served via ReadIndex (%d confirm rounds, %d retries bounced)\n",
				m.ReplReads.Value(), m.ReplReadRounds.Value(), m.ReplReadRetries.Value())
		}
	}
	if s.d != nil {
		_ = s.d.Close()
	}
	if s.dg != nil {
		_ = s.dg.Close()
	}
	if s.b != nil {
		_ = s.b.Close()
	}
	if s.db != nil {
		_ = s.db.Close()
	}
	if s.sp != nil {
		_ = s.sp.Close()
	}
	if s.reg != nil {
		_ = s.reg.Close()
	}
	for _, obj := range s.defObjs {
		_ = obj.Close()
	}
	// Last, after the node drained and the objects stopped delivering calls:
	// flush and close the ledger so every acknowledged outcome is on disk
	// before the process exits.
	if s.store != nil {
		_ = s.store.Close()
	}
}
