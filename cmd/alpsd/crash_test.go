package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/rpc"
)

// buildAlpsd compiles the daemon once per test binary into a temp dir.
func buildAlpsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "alpsd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/alpsd")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build alpsd: %v\n%s", err, out)
	}
	return bin
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// daemon is one live alpsd child process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches the binary with a durable data dir and scans its
// stdout for the bound address (and the recovery line, which it logs).
func startDaemon(t *testing.T, bin, dataDir string) *daemon {
	t.Helper()
	// -snapshot-every is small so later cycles recover from a snapshot plus
	// a short replay suffix, not a pure log replay.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-search-cost", "0s", "-snapshot-every", "64")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "alpsd: recovered ledger:") {
			t.Log(line)
		}
		if rest, ok := strings.CutPrefix(line, "alpsd listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("daemon never reported its address (scan err: %v)", sc.Err())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() { _, _ = io.Copy(io.Discard, out) }()
	return &daemon{cmd: cmd, addr: addr}
}

// TestCrashRecoverySoak is the end-to-end durability acceptance test: a
// real alpsd child is kill -9'd in the middle of write traffic, restarted
// on the same data dir, and the recovered database must satisfy the
// CheckCrashRecovery invariants — zero lost acknowledged writes, no
// phantom values — across several kill cycles.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak spawns real processes")
	}
	bin := buildAlpsd(t)
	dataDir := t.TempDir()

	d := startDaemon(t, bin, dataDir)
	var curAddr atomic.Value
	curAddr.Store(d.addr)
	t.Cleanup(func() {
		_ = d.cmd.Process.Kill()
		_, _ = d.cmd.Process.Wait()
	})

	const keys = 4
	const cycles = 3
	var ledger []conformance.DurOp
	val := 0

	readBack := func(rem *rpc.Remote) {
		t.Helper()
		for k := 0; k < keys; k++ {
			res, err := rem.Call("Database", "Read", k)
			if err != nil {
				t.Fatalf("read key %d: %v", k, err)
			}
			v := 0
			if res[1].(bool) {
				v = res[0].(int)
			}
			ledger = append(ledger, conformance.DurOp{Kind: "read", Key: k, Value: v})
		}
	}

	for cycle := 0; cycle < cycles; cycle++ {
		// A fresh Remote per incarnation: each gets a distinct ClientID so
		// its sequence numbers can't collide with a previous incarnation's
		// recovered at-most-once table.
		rem, err := rpc.DialWith(d.addr, rpc.DialOptions{
			ClientID: fmt.Sprintf("soak-%d", cycle),
			Retry:    rpc.RetryPolicy{Max: 2, Backoff: 2 * time.Millisecond, AttemptTimeout: 5 * time.Second},
		})
		if err != nil {
			t.Fatalf("cycle %d: dial: %v", cycle, err)
		}
		readBack(rem)

		// Traffic, with the kill landing mid-write: a single synchronous
		// writer round-robins monotone values over the keys while a second
		// goroutine SIGKILLs the daemon.
		dead := make(chan struct{})
		go func(cmd *exec.Cmd) {
			time.Sleep(time.Duration(60+30*cycle) * time.Millisecond)
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			close(dead)
		}(d.cmd)

		failed := 0
		for failed < 2 {
			val++
			k := val % keys
			ledger = append(ledger, conformance.DurOp{Kind: "sent", Key: k, Value: val})
			if _, err := rem.Call("Database", "Write", k, val); err == nil {
				ledger = append(ledger, conformance.DurOp{Kind: "ack", Key: k, Value: val})
			} else {
				failed++
			}
		}
		<-dead
		rem.Close()
		ledger = append(ledger, conformance.DurOp{Kind: "crash"})

		d = startDaemon(t, bin, dataDir)
		curAddr.Store(d.addr)
	}

	// Final incarnation: the recovered state must reflect every write the
	// dead processes acknowledged.
	rem, err := rpc.DialWith(d.addr, rpc.DialOptions{ClientID: "soak-final"})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	readBack(rem)

	acked := 0
	for _, op := range ledger {
		if op.Kind == "ack" {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("soak acknowledged no writes — the kill landed too early to test anything")
	}
	t.Logf("soak: %d writes sent, %d acknowledged, %d crashes", val, acked, cycles)
	for _, div := range conformance.CheckCrashRecovery(ledger) {
		t.Errorf("%s: %s", div.Rule, div.Detail)
	}
}
