package main

import (
	"errors"
	"testing"

	"repro/internal/rpc"
)

func startTestServer(t *testing.T, args ...string) (*server, string) {
	t.Helper()
	srv, addr, err := newServer(append([]string{"-addr", "127.0.0.1:0"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestServerHostsAllObjects(t *testing.T) {
	srv, _ := startTestServer(t)
	got := srv.node.Objects()
	want := map[string]bool{"Buffer": true, "Database": true, "Dictionary": true, "Spooler": true}
	if len(got) != len(want) {
		t.Fatalf("Objects = %v", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("unexpected object %q", name)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	_, addr := startTestServer(t, "-search-cost", "0s")
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	res, err := rem.Call("Dictionary", "Search", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "meaning of hello" {
		t.Fatalf("Search = %v", res)
	}
	if _, err := rem.Call("Buffer", "Deposit", "x"); err != nil {
		t.Fatal(err)
	}
	res, err = rem.Call("Buffer", "Remove")
	if err != nil || res[0] != "x" {
		t.Fatalf("Remove = %v, %v", res, err)
	}
	if _, err := rem.Call("Database", "Write", 1, 42); err != nil {
		t.Fatal(err)
	}
	res, err = rem.Call("Database", "Read", 1)
	if err != nil || res[0] != 42 || res[1] != true {
		t.Fatalf("Read = %v, %v", res, err)
	}
}

func TestNewServerBadFlags(t *testing.T) {
	if _, _, err := newServer([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, _, err := newServer([]string{"-addr", "127.0.0.1:0", "-buffer-slots", "0"}); err == nil {
		t.Fatal("zero buffer slots accepted")
	}
	if _, _, err := newServer([]string{"-addr", "127.0.0.1:0", "-read-max", "0"}); err == nil {
		t.Fatal("zero read-max accepted")
	}
	if _, _, err := newServer([]string{"-addr", "no-such-host:99999"}); err == nil {
		t.Fatal("bad address accepted")
	}
	_ = errors.Is
}

func TestServerSpooler(t *testing.T) {
	_, addr := startTestServer(t, "-page-cost", "0s")
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	res, err := rem.Call("Spooler", "Print", "doc.ps", 3)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := res[0].(int); !ok || p < 0 {
		t.Fatalf("Print = %v", res)
	}
}

func TestServerHostsDefinitionObjects(t *testing.T) {
	srv, addr := startTestServer(t, "-defs", "testdata/coord.defs")
	found := map[string]bool{}
	for _, name := range srv.node.Objects() {
		found[name] = true
	}
	if !found["Mutex"] || !found["Turnstile"] {
		t.Fatalf("Objects = %v, want Mutex and Turnstile", srv.node.Objects())
	}
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if _, err := rem.Call("Mutex", "lock"); err != nil {
		t.Fatal(err)
	}
	if _, err := rem.Call("Mutex", "unlock"); err != nil {
		t.Fatal(err)
	}
	if _, err := rem.Call("Turnstile", "enter"); err != nil {
		t.Fatal(err)
	}
}

func TestServerBadDefsFile(t *testing.T) {
	if _, _, err := newServer([]string{"-addr", "127.0.0.1:0", "-defs", "testdata/no-such-file"}); err == nil {
		t.Fatal("missing defs file accepted")
	}
}

func TestServerSupervisionFlags(t *testing.T) {
	// Bad values are rejected at startup.
	if _, _, err := newServer([]string{"-addr", "127.0.0.1:0", "-manager-policy", "reboot"}); err == nil {
		t.Fatal("unknown -manager-policy accepted")
	}
	if _, _, err := newServer([]string{"-addr", "127.0.0.1:0", "-shed", "drop-everything"}); err == nil {
		t.Fatal("unknown -shed accepted")
	}

	// Good values apply to every hosted object and the node still serves.
	_, addr := startTestServer(t,
		"-search-cost", "0s",
		"-manager-policy", "restart",
		"-max-restarts", "3",
		"-max-pending", "64",
		"-shed", "reject-newest",
		"-call-timeout", "5s",
		"-stall-threshold", "10s",
	)
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if res, err := rem.Call("Dictionary", "Search", "hello"); err != nil || res[0] != "meaning of hello" {
		t.Fatalf("Search = %v, %v", res, err)
	}
	if _, err := rem.Call("Database", "Write", 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestServerShardedDictionary(t *testing.T) {
	srv, addr := startTestServer(t, "-search-cost", "0s", "-shards", "4")
	if srv.dg == nil || srv.dg.Len() != 4 {
		t.Fatalf("expected a 4-shard dictionary group, got %+v", srv.dg)
	}
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	// Same published name, same wire protocol; different words may land
	// on different replicas but every answer must be correct.
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, w := range words {
		res, err := rem.Call("Dictionary", "Search", w)
		if err != nil {
			t.Fatalf("Search %s: %v", w, err)
		}
		if res[0] != "meaning of "+w {
			t.Fatalf("Search %s = %v", w, res)
		}
	}
	if st, ok := srv.dg.EntryStats("Search"); !ok || st.Completed != uint64(len(words)) {
		t.Fatalf("aggregate Search stats = %+v, want %d completed", st, len(words))
	}
	// Key affinity: repeating a word must hit the replica ShardFor names.
	i := srv.dg.ShardFor("Search", "alpha")
	before, _ := srv.dg.Shard(i).EntryStats("Search")
	if _, err := rem.Call("Dictionary", "Search", "alpha"); err != nil {
		t.Fatal(err)
	}
	after, _ := srv.dg.Shard(i).EntryStats("Search")
	if after.Calls != before.Calls+1 {
		t.Fatalf("repeat Search(alpha) missed shard %d (calls %d -> %d)", i, before.Calls, after.Calls)
	}
}
