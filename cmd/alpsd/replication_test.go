package main

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	alps "repro"
	"repro/internal/rpc"
)

// reservePorts grabs n distinct loopback ports by binding and releasing
// them. A later bind can race another process for the port; acceptable in
// tests, where a collision just fails fast.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		_ = lis.Close()
	}
	return addrs
}

// TestReplicatedRegistryFailover runs the daemon's advertised topology
// for real: three alpsd processes (in-process), a replicated Registry,
// a DialMulti client — then the leader dies and nobody notices.
func TestReplicatedRegistryFailover(t *testing.T) {
	addrs := reservePorts(t, 3)
	ids := []string{"A", "B", "C"}
	var peerParts []string
	for i, id := range ids {
		peerParts = append(peerParts, fmt.Sprintf("%s=%s", id, addrs[i]))
	}
	peers := strings.Join(peerParts, ",")

	servers := make(map[string]*server, 3)
	for i, id := range ids {
		srv, _, err := newServer([]string{
			"-addr", addrs[i], "-name", id,
			"-replica-id", id, "-peers", peers,
			"-search-cost", "0s",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		servers[id] = srv
	}

	rem, err := rpc.DialMulti(addrs, rpc.DialOptions{
		ClientID: "failover-test",
		Retry: rpc.RetryPolicy{
			Max:            200,
			Backoff:        time.Millisecond,
			MaxBackoff:     25 * time.Millisecond,
			AttemptTimeout: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	if _, err := rem.Call("Registry", "Put", "region", "eu-west"); err != nil {
		t.Fatalf("Put before failover: %v", err)
	}

	var leader *server
	deadline := time.Now().Add(3 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		for _, srv := range servers {
			if role, _, _ := srv.rep.Status(); role == alps.ReplicaLeader {
				leader = srv
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader elected")
	}
	leader.Close()

	if _, err := rem.Call("Registry", "Put", "owner", "ops"); err != nil {
		t.Fatalf("Put through failover: %v", err)
	}
	for key, want := range map[string]string{"region": "eu-west", "owner": "ops"} {
		res, err := rem.Call("Registry", "Get", key)
		if err != nil {
			t.Fatalf("Get %s after failover: %v", key, err)
		}
		if res[0] != want {
			t.Fatalf("Get %s = %v, want %q — the group forgot an acknowledged write", key, res, want)
		}
	}
}

// TestReplicationFlagValidation: half-configured replication must fail
// fast, not limp into a single-member group.
func TestReplicationFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-replica-id", "A"},
		{"-peers", "A=127.0.0.1:1"},
		{"-join"},
		{"-replica-id", "A", "-peers", "B=127.0.0.1:1"},
		{"-replica-id", "A", "-peers", "garbage"},
		{"-replica-id", "A", "-peers", "A=127.0.0.1:1,A=127.0.0.1:2"},
	} {
		srv, _, err := newServer(append([]string{"-addr", "127.0.0.1:0"}, args...))
		if err == nil {
			srv.Close()
			t.Errorf("newServer(%v) accepted a broken replication config", args)
		}
	}
}
