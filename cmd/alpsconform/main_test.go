package main

import (
	"strings"
	"testing"
)

func TestRunPassingCampaign(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-seed", "5", "-programs", "3", "-schedules", "2", "-q"}, &out)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "PASS") {
		t.Errorf("output missing PASS:\n%s", got)
	}
	if !strings.Contains(got, "6 runs") {
		t.Errorf("output missing run count:\n%s", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-nope"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
