package alps_test

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/simnet"
)

// TestChaosSoak runs a mixed client workload over a simnet with injected
// connection kills and a mid-run one-way partition pair, and asserts the
// at-most-once contract end to end: every invocation lands exactly once
// (zero lost, zero duplicated) and nothing leaks.
//
// Corruption injection is deliberately excluded here: a flipped byte is
// detected by gob decode failure with overwhelming probability but not
// certainty (docs/FAULTS.md), so its test lives in internal/simnet where
// the assertion matches the guarantee.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	network := simnet.New(simnet.Config{
		Latency:  100 * time.Microsecond,
		Jitter:   50 * time.Microsecond,
		KillProb: 0.02, // ≥1% per-write connection-kill probability
		Seed:     42,
	})

	// Ledger records every executed invocation token, the dedup oracle.
	var (
		mu    sync.Mutex
		execs = make(map[string]int)
	)
	obj, err := core.New("Ledger",
		core.WithEntry(core.EntrySpec{Name: "Apply", Params: 1, Results: 1, Array: 16,
			Body: func(inv *core.Invocation) error {
				tok := inv.Param(0).(string)
				mu.Lock()
				execs[tok]++
				mu.Unlock()
				inv.Return(tok)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}

	nodeMetrics := &rpc.Metrics{}
	node := rpc.NewNodeWith("server", rpc.NodeOptions{DedupCap: 8192, Metrics: nodeMetrics})
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	lis, err := network.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()

	const clients, opsPer = 4, 300
	cliMetrics := &rpc.Metrics{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", c)
			redial := func() (net.Conn, error) { return network.DialFrom(name, "server") }
			conn, err := redial()
			if err != nil {
				t.Errorf("%s: initial dial: %v", name, err)
				return
			}
			rem := rpc.DialConnWith(conn, rpc.DialOptions{
				ClientID: name,
				Redial:   redial,
				Metrics:  cliMetrics,
				Retry: rpc.RetryPolicy{
					Max:            100,
					Backoff:        time.Millisecond,
					MaxBackoff:     25 * time.Millisecond,
					AttemptTimeout: time.Second,
				},
			})
			defer rem.Close()
			for i := 0; i < opsPer; i++ {
				tok := fmt.Sprintf("%s-%d", name, i)
				res, err := rem.Call("Ledger", "Apply", tok)
				if err != nil {
					t.Errorf("%s: lost invocation %q: %v", name, tok, err)
					return
				}
				if len(res) != 1 || res[0] != tok {
					t.Errorf("%s: invocation %q answered %v", name, tok, res)
					return
				}
			}
		}(c)
	}

	// Mid-run: partition one client off in both directions, then heal.
	time.Sleep(40 * time.Millisecond)
	network.Partition("c0", "server")
	network.Partition("server", "c0")
	time.Sleep(100 * time.Millisecond)
	network.Heal("c0", "server")
	network.Heal("server", "c0")

	wg.Wait()
	node.Close()
	if err := obj.Close(); err != nil {
		t.Errorf("ledger close: %v", err)
	}

	// Exactly-once ledger audit: every token executed exactly once.
	mu.Lock()
	lost, duplicated := 0, 0
	for c := 0; c < clients; c++ {
		for i := 0; i < opsPer; i++ {
			switch n := execs[fmt.Sprintf("c%d-%d", c, i)]; {
			case n == 0:
				lost++
			case n > 1:
				duplicated++
			}
		}
	}
	unexpected := len(execs) - clients*opsPer
	mu.Unlock()
	if lost != 0 {
		t.Errorf("%d invocations lost", lost)
	}
	if duplicated != 0 {
		t.Errorf("%d invocations executed more than once", duplicated)
	}
	if unexpected > 0 {
		t.Errorf("%d unexpected tokens executed", unexpected)
	}

	kills, corruptions, partDrops := network.Stats()
	t.Logf("chaos: %d kills, %d corruptions, %d partition drops; client retries %d, reconnects %d; node dedup hits %d, drain drops %d",
		kills, corruptions, partDrops,
		cliMetrics.Retries.Value(), cliMetrics.Reconnects.Value(),
		nodeMetrics.DedupHits.Value(), nodeMetrics.DrainDrops.Value())
	if kills == 0 {
		t.Error("fault injection never fired — chaos test is vacuous")
	}
	if cliMetrics.Reconnects.Value() == 0 {
		t.Error("no reconnects happened — resilience path untested")
	}

	// Goroutine-leak check with settling time (as in soak_test.go).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<16)
			n := runtime.Stack(stack, true)
			t.Fatalf("goroutines: before %d, after %d — leak?\n%s", before, after, stack[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
