package alps_test

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/simnet"
)

// TestChaosSoak runs a mixed client workload over a simnet with injected
// connection kills, byte corruption and a mid-run one-way partition pair,
// and asserts the at-most-once contract end to end: every invocation
// lands exactly once (zero lost, zero duplicated) and nothing leaks.
//
// Corruption injection became admissible here with the checksummed wire
// codec: every frame carries a CRC32-C, so a flipped byte is detected
// with certainty, kills the link typed (ErrBadFrame, docs/FAULTS.md §5)
// and funnels into the same retry/replay path as a connection kill — the
// gob era could only promise detection "with overwhelming probability".
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	network := simnet.New(simnet.Config{
		Latency:     100 * time.Microsecond,
		Jitter:      50 * time.Microsecond,
		KillProb:    0.02, // ≥1% per-write connection-kill probability
		CorruptProb: 0.01, // one flipped byte per ~100 writes; must die typed, never execute
		Seed:        42,
	})

	// Ledger records every executed invocation token, the dedup oracle.
	var (
		mu    sync.Mutex
		execs = make(map[string]int)
	)
	obj, err := core.New("Ledger",
		core.WithEntry(core.EntrySpec{Name: "Apply", Params: 1, Results: 1, Array: 16,
			Body: func(inv *core.Invocation) error {
				tok := inv.Param(0).(string)
				mu.Lock()
				execs[tok]++
				mu.Unlock()
				inv.Return(tok)
				return nil
			}}),
	)
	if err != nil {
		t.Fatal(err)
	}

	nodeMetrics := &rpc.Metrics{}
	node := rpc.NewNodeWith("server", rpc.NodeOptions{DedupCap: 8192, Metrics: nodeMetrics})
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	lis, err := network.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()

	const clients, opsPer = 4, 300
	cliMetrics := &rpc.Metrics{}
	var clientsDone atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer clientsDone.Add(1)
			name := fmt.Sprintf("c%d", c)
			redial := func() (net.Conn, error) { return network.DialFrom(name, "server") }
			conn, err := redial()
			if err != nil {
				t.Errorf("%s: initial dial: %v", name, err)
				return
			}
			rem := rpc.DialConnWith(conn, rpc.DialOptions{
				ClientID: name,
				Redial:   redial,
				Metrics:  cliMetrics,
				Retry: rpc.RetryPolicy{
					Max:            100,
					Backoff:        time.Millisecond,
					MaxBackoff:     25 * time.Millisecond,
					AttemptTimeout: time.Second,
				},
			})
			defer rem.Close()
			for i := 0; i < opsPer; i++ {
				tok := fmt.Sprintf("%s-%d", name, i)
				res, err := rem.Call("Ledger", "Apply", tok)
				if err != nil {
					t.Errorf("%s: lost invocation %q: %v", name, tok, err)
					return
				}
				if len(res) != 1 || res[0] != tok {
					t.Errorf("%s: invocation %q answered %v", name, tok, res)
					return
				}
			}
		}(c)
	}

	// Mid-run: partition one client off in both directions once traffic is
	// demonstrably flowing, then heal after the partition has demonstrably
	// bitten (drops observed) — event-based waits, not wall-clock guesses.
	waitUntil(t, "100 ledger executions before partitioning", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(execs) >= 100
	})
	retriesBefore := cliMetrics.Retries.Value()
	network.Partition("c0", "server")
	network.Partition("server", "c0")
	// Heal once the partition has demonstrably bitten — but soon enough
	// that c0's retry budget survives. A dropped frame is the strongest
	// signal, but it only accrues on an established connection: if c0's
	// link was already dead (a kill or corruption landed first), the
	// partitioned client cannot even dial and drops never happen, so a
	// burst of retry attempts since the partition counts as bitten too.
	waitUntil(t, "partition drops (or clients finishing)", func() bool {
		_, _, partDrops := network.Stats()
		bitten := partDrops >= 1 || cliMetrics.Retries.Value() >= retriesBefore+5
		// clientsDone guards the rare schedule where every client finished
		// its ops before the partition could drop anything.
		return bitten || clientsDone.Load() == clients
	})
	network.Heal("c0", "server")
	network.Heal("server", "c0")

	wg.Wait()
	node.Close()
	if err := obj.Close(); err != nil {
		t.Errorf("ledger close: %v", err)
	}

	// Exactly-once ledger audit: every token executed exactly once.
	mu.Lock()
	lost, duplicated := 0, 0
	for c := 0; c < clients; c++ {
		for i := 0; i < opsPer; i++ {
			switch n := execs[fmt.Sprintf("c%d-%d", c, i)]; {
			case n == 0:
				lost++
			case n > 1:
				duplicated++
			}
		}
	}
	unexpected := len(execs) - clients*opsPer
	mu.Unlock()
	if lost != 0 {
		t.Errorf("%d invocations lost", lost)
	}
	if duplicated != 0 {
		t.Errorf("%d invocations executed more than once", duplicated)
	}
	if unexpected > 0 {
		t.Errorf("%d unexpected tokens executed", unexpected)
	}

	kills, corruptions, partDrops := network.Stats()
	t.Logf("chaos: %d kills, %d corruptions, %d partition drops; client retries %d, reconnects %d; node dedup hits %d, drain drops %d",
		kills, corruptions, partDrops,
		cliMetrics.Retries.Value(), cliMetrics.Reconnects.Value(),
		nodeMetrics.DedupHits.Value(), nodeMetrics.DrainDrops.Value())
	if kills == 0 {
		t.Error("fault injection never fired — chaos test is vacuous")
	}
	if corruptions == 0 {
		t.Error("corruption injection never fired — CRC detection untested")
	}
	if cliMetrics.Reconnects.Value() == 0 {
		t.Error("no reconnects happened — resilience path untested")
	}

	// Goroutine-leak check with deadline-aware settling.
	settleGoroutines(t, before)
}

// TestOverloadCrashSoak combines every supervision mechanism under fault
// injection: a Restart-policy object whose manager panics on poison-pill
// tokens, a tight per-entry pending bound with reject-newest shedding, a
// faulty simnet, and two client populations — patient callers that retry
// overloads until every token lands, and impatient callers that give up
// after two attempts. Invariants: every call resolves (no hangs), no
// successful token executes twice, no shed-final token executes at all,
// the manager restarts at least once, shedding actually fired, and no
// goroutine leaks.
func TestOverloadCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("overload/crash soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	network := simnet.New(simnet.Config{
		Latency:  100 * time.Microsecond,
		Jitter:   50 * time.Microsecond,
		KillProb: 0.01,
		Seed:     7,
	})

	// Ledger of executed tokens: the exactly-once / never-ran oracle.
	var (
		mu    sync.Mutex
		execs = make(map[string]int)
	)
	// Each distinct poison pill kills the manager once; the requeued call
	// is then served by the restarted incarnation.
	var pills sync.Map
	sup := &metrics.Supervision{}
	obj, err := core.New("Gate",
		core.WithEntry(core.EntrySpec{Name: "Apply", Params: 1, Results: 1, Array: 2,
			Body: func(inv *core.Invocation) error {
				tok := inv.Param(0).(string)
				mu.Lock()
				execs[tok]++
				mu.Unlock()
				time.Sleep(200 * time.Microsecond) // keep the entry busy so the bound bites
				inv.Return(tok)
				return nil
			}}),
		core.WithManager(func(m *core.Mgr) {
			for {
				a, err := m.Accept("Apply")
				if err != nil {
					return
				}
				if tok, ok := a.Params[0].(string); ok && strings.HasPrefix(tok, "boom") {
					if _, dup := pills.LoadOrStore(tok, true); !dup {
						panic("manager swallowed a poison pill: " + tok)
					}
				}
				if _, err := m.Execute(a); err != nil {
					return
				}
			}
		}, core.InterceptPR("Apply", 1, 0)),
		core.WithObjectOptions(core.ObjectOptions{
			ManagerPolicy: core.Restart,
			Restart:       core.RestartPolicy{Max: 20, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
			MaxPending:    3,
			Shed:          core.ShedRejectNewest,
			Metrics:       sup,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	nodeMetrics := &rpc.Metrics{}
	node := rpc.NewNodeWith("server", rpc.NodeOptions{DedupCap: 8192, Metrics: nodeMetrics})
	if err := node.Publish(obj); err != nil {
		t.Fatal(err)
	}
	lis, err := network.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = node.Serve(lis) }()

	const patients, impatients, opsPer = 4, 2, 150
	cliMetrics := &rpc.Metrics{}
	var (
		finMu         sync.Mutex
		shedFinals    []string // tokens whose final outcome was ErrOverload
		otherFailures int
	)
	dial := func(name string, retry rpc.RetryPolicy) (*rpc.Remote, error) {
		redial := func() (net.Conn, error) { return network.DialFrom(name, "server") }
		conn, err := redial()
		if err != nil {
			return nil, err
		}
		return rpc.DialConnWith(conn, rpc.DialOptions{
			ClientID: name,
			Redial:   redial,
			Metrics:  cliMetrics,
			Retry:    retry,
		}), nil
	}

	var wg sync.WaitGroup
	// Patient clients: retry transport faults and overloads until every
	// token lands, injecting one poison pill each early in the run.
	for c := 0; c < patients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("p%d", c)
			rem, err := dial(name, rpc.RetryPolicy{
				Max: 50, Backoff: time.Millisecond, MaxBackoff: 25 * time.Millisecond,
				AttemptTimeout: time.Second,
			})
			if err != nil {
				t.Errorf("%s: dial: %v", name, err)
				return
			}
			defer rem.Close()
			for i := 0; i < opsPer; i++ {
				tok := fmt.Sprintf("%s-%d", name, i)
				if i == 10 {
					tok = "boom-" + tok // one pill per patient client
				}
				for {
					res, err := rem.Call("Gate", "Apply", tok)
					if errors.Is(err, core.ErrOverload) {
						time.Sleep(2 * time.Millisecond) // shed: never executed, safe to re-submit
						continue
					}
					if err != nil {
						t.Errorf("%s: token %q lost: %v", name, tok, err)
						return
					}
					if res[0] != tok {
						t.Errorf("%s: token %q answered %v", name, tok, res)
						return
					}
					break
				}
			}
		}(c)
	}
	// Impatient clients: two attempts, then give up. An overload final
	// must mean the call never executed; transport-failure finals make no
	// execution claim (the reply may have been killed after execution).
	for c := 0; c < impatients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("i%d", c)
			rem, err := dial(name, rpc.RetryPolicy{
				Max: 2, Backoff: time.Millisecond, AttemptTimeout: time.Second,
			})
			if err != nil {
				t.Errorf("%s: dial: %v", name, err)
				return
			}
			defer rem.Close()
			for i := 0; i < opsPer; i++ {
				tok := fmt.Sprintf("%s-%d", name, i)
				_, err := rem.Call("Gate", "Apply", tok)
				switch {
				case err == nil:
				case errors.Is(err, core.ErrOverload):
					finMu.Lock()
					shedFinals = append(shedFinals, tok)
					finMu.Unlock()
				default:
					finMu.Lock()
					otherFailures++
					finMu.Unlock()
				}
			}
		}(c)
	}

	wg.Wait()
	node.Close()
	if err := obj.Close(); err != nil {
		t.Errorf("gate close: %v", err)
	}

	// Audit the ledger: patient tokens land exactly once; impatient
	// overload finals never executed.
	mu.Lock()
	for c := 0; c < patients; c++ {
		for i := 0; i < opsPer; i++ {
			tok := fmt.Sprintf("p%d-%d", c, i)
			if i == 10 {
				tok = "boom-" + tok
			}
			if n := execs[tok]; n != 1 {
				t.Errorf("patient token %q executed %d times, want 1", tok, n)
			}
		}
	}
	for _, tok := range shedFinals {
		if n := execs[tok]; n != 0 {
			t.Errorf("shed-final token %q executed %d times, want 0", tok, n)
		}
	}
	mu.Unlock()

	st := obj.SupervisionStats()
	kills, _, _ := network.Stats()
	t.Logf("soak: %d kills; restarts %d, sheds %d; client overload retries %d, transport retries %d, reconnects %d; node overloads %d; impatient shed finals %d, other failures %d",
		kills, st.Restarts, st.Sheds,
		cliMetrics.Overloads.Value(), cliMetrics.Retries.Value(), cliMetrics.Reconnects.Value(),
		nodeMetrics.Overloads.Value(), len(shedFinals), otherFailures)

	if st.Restarts == 0 {
		t.Error("manager never restarted — poison pills did not fire")
	}
	if st.Poisoned {
		t.Error("object poisoned: restart budget exhausted under soak")
	}
	if st.Sheds == 0 {
		t.Error("admission control never shed — soak is vacuous")
	}
	if got := sup.Restarts.Value(); got != uint64(st.Restarts) {
		t.Errorf("metrics.Supervision.Restarts = %d, SupervisionStats.Restarts = %d", got, st.Restarts)
	}
	if got := sup.Sheds.Value(); got != st.Sheds {
		t.Errorf("metrics.Supervision.Sheds = %d, SupervisionStats.Sheds = %d", got, st.Sheds)
	}
	// Every overload final observed by a client corresponds to a shed the
	// node counted (the node may count more: patient retries, lost replies).
	if node, cli := nodeMetrics.Overloads.Value(), uint64(len(shedFinals)); node < cli {
		t.Errorf("node Overloads %d < client overload finals %d", node, cli)
	}

	// Goroutine-leak check with deadline-aware settling.
	settleGoroutines(t, before)
}
