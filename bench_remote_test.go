package alps_test

import (
	"sync"
	"testing"

	alps "repro"
	"repro/internal/rpc"
)

// BenchmarkRemotePipelined is the E14-shaped remote workload: 64 client
// goroutines multiplexed over a few shared connections, all driving one
// echo object on a TCP-loopback node. Unlike E10's lock-step single
// client, the pending-table lets many calls ride each link concurrently,
// so this measures the transport's pipelined throughput — codec cost,
// read-loop dispatch, and frame coalescing — rather than one round-trip
// latency.
func BenchmarkRemotePipelined(b *testing.B) {
	run := func(b *testing.B, clients, conns int, pool []alps.Option) {
		b.ReportAllocs()
		opts := append([]alps.Option{
			alps.WithEntry(alps.EntrySpec{Name: "P", Params: 1, Results: 1, Array: 128,
				Body: func(inv *alps.Invocation) error {
					inv.Return(inv.Param(0))
					return nil
				}}),
		}, pool...)
		obj, err := alps.New("Echo", opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer obj.Close()
		node := rpc.NewNode("bench")
		if err := node.Publish(obj); err != nil {
			b.Fatal(err)
		}
		addr, err := node.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()

		rems := make([]*rpc.Remote, conns)
		for i := range rems {
			if rems[i], err = rpc.Dial(addr); err != nil {
				b.Fatal(err)
			}
			defer rems[i].Close()
		}

		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/clients + 1
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rem := rems[c%conns]
				for i := 0; i < per; i++ {
					if _, err := rem.Call("Echo", "P", i); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}
	b.Run("clients=64-conns=1", func(b *testing.B) { run(b, 64, 1, nil) })
	b.Run("clients=64-conns=4", func(b *testing.B) { run(b, 64, 4, nil) })
	// Same wire workload with the paper-§3 pooled provisioning instead of
	// spawn-per-call: a handful of resident worker processes absorb the
	// body executions, trading goroutine creation for channel handoff —
	// "attractive for resources in high demand" (PAPER.md), which a 64:1
	// client fan-in is.
	b.Run("clients=64-conns=4-pooled", func(b *testing.B) {
		run(b, 64, 4, []alps.Option{alps.WithPool(alps.PoolShared, 8)})
	})
}
