package alps

import (
	"fmt"
	"sync"
)

// Par executes the given functions in parallel and returns when all of them
// have terminated, implementing the paper's
// "par P(...), Q(...) and R(...) end par" (§2.1.1). If any function panics,
// Par panics with the first panic value after all functions complete.
func Par(fs ...func()) {
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstPanic any
		panicked   bool
	)
	for _, f := range fs {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicked {
						panicked = true
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			f()
		}(f)
	}
	wg.Wait()
	if panicked {
		panic(fmt.Sprintf("alps: Par branch panicked: %v", firstPanic))
	}
}

// ParFor executes f(m), f(m+1), ..., f(n) in parallel and returns when all
// n-m+1 executions have terminated, implementing the paper's
// "par i = m to n do P(i) end par" (§2.1.1). It is a no-op when n < m.
func ParFor(m, n int, f func(i int)) {
	if n < m {
		return
	}
	fs := make([]func(), 0, n-m+1)
	for i := m; i <= n; i++ {
		i := i
		fs = append(fs, func() { f(i) })
	}
	Par(fs...)
}

// ParErr executes the functions in parallel and returns the first non-nil
// error, a convenience for Go-style bodies.
func ParErr(fs ...func() error) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, f := range fs {
		wg.Add(1)
		go func(f func() error) {
			defer wg.Done()
			if err := f(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(f)
	}
	wg.Wait()
	return firstErr
}
