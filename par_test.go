package alps

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParRunsAllBranches(t *testing.T) {
	var n atomic.Int64
	Par(
		func() { n.Add(1) },
		func() { n.Add(10) },
		func() { n.Add(100) },
	)
	if got := n.Load(); got != 111 {
		t.Fatalf("sum = %d, want 111", got)
	}
}

func TestParWaitsForAll(t *testing.T) {
	var slowDone atomic.Bool
	Par(
		func() {},
		func() {
			time.Sleep(30 * time.Millisecond)
			slowDone.Store(true)
		},
	)
	if !slowDone.Load() {
		t.Fatal("Par returned before the slow branch terminated")
	}
}

func TestParBranchesRunConcurrently(t *testing.T) {
	// Two branches that can only complete together prove concurrency.
	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	go func() {
		Par(
			func() { wg.Done(); wg.Wait() },
			func() { wg.Done(); wg.Wait() },
		)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Par branches did not run concurrently")
	}
}

func TestParPropagatesPanic(t *testing.T) {
	var otherRan atomic.Bool
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Par did not re-panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value = %v", r)
		}
		if !otherRan.Load() {
			t.Fatal("Par panicked before all branches completed")
		}
	}()
	Par(
		func() { panic("boom") },
		func() {
			time.Sleep(20 * time.Millisecond)
			otherRan.Store(true)
		},
	)
}

func TestParEmpty(t *testing.T) {
	Par() // must not hang or panic
}

func TestParFor(t *testing.T) {
	var sum atomic.Int64
	ParFor(3, 7, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 3+4+5+6+7 {
		t.Fatalf("sum = %d, want 25", got)
	}
}

func TestParForEmptyRange(t *testing.T) {
	ran := false
	ParFor(5, 4, func(i int) { ran = true })
	if ran {
		t.Fatal("ParFor ran f on empty range")
	}
}

func TestParForDistinctIndices(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]int)
	ParFor(0, 99, func(i int) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	})
	if len(seen) != 100 {
		t.Fatalf("saw %d distinct indices, want 100", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestParErr(t *testing.T) {
	sentinel := errors.New("branch failed")
	err := ParErr(
		func() error { return nil },
		func() error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("ParErr = %v, want sentinel", err)
	}
	if err := ParErr(func() error { return nil }); err != nil {
		t.Fatalf("ParErr all-nil = %v", err)
	}
}
