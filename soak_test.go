package alps_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/objects/alarmclock"
	"repro/internal/objects/buffer"
	"repro/internal/objects/dict"
	"repro/internal/objects/parbuffer"
	"repro/internal/objects/rwdb"
	"repro/internal/objects/spooler"
	"repro/internal/rpc"
	"repro/internal/workload"
)

// TestSoakMixedWorkload drives every example object concurrently for a
// while, then closes everything and verifies no goroutines leaked — the
// whole-system shakedown.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	buf, err := buffer.New(8)
	if err != nil {
		t.Fatal(err)
	}
	pbuf, err := parbuffer.New(parbuffer.Config{Slots: 8, ProducerMax: 4, ConsumerMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	db, err := rwdb.New(rwdb.Config{ReadMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dict.New(dict.Options{SearchMax: 8, MaxActive: 2, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spooler.New(spooler.Config{Printers: 2, PrintMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	clock, err := alarmclock.New(alarmclock.Config{SleeperMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	stopTicks := make(chan struct{})
	go clock.Ticker(time.Millisecond, stopTicks)

	// A remote view of the dictionary, through a real TCP loopback.
	node := rpc.NewNode("soak")
	if err := node.Publish(d.Object()); err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	const workers, opsPer = 8, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			ws, err := workload.NewWordStream(uint64(w)+100, 12, 1.0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(8) {
				case 0:
					if err := buf.Deposit(i); err != nil {
						t.Errorf("buf.Deposit: %v", err)
						return
					}
					if _, err := buf.Remove(); err != nil {
						t.Errorf("buf.Remove: %v", err)
						return
					}
				case 1:
					if err := pbuf.Deposit(i); err != nil {
						t.Errorf("pbuf.Deposit: %v", err)
						return
					}
					if _, err := pbuf.Remove(); err != nil {
						t.Errorf("pbuf.Remove: %v", err)
						return
					}
				case 2:
					if err := db.Write(rng.Intn(16), i); err != nil {
						t.Errorf("db.Write: %v", err)
						return
					}
				case 3:
					if _, _, err := db.Read(rng.Intn(16)); err != nil {
						t.Errorf("db.Read: %v", err)
						return
					}
				case 4:
					if _, err := d.Search(ws.Next()); err != nil {
						t.Errorf("dict.Search: %v", err)
						return
					}
				case 5:
					if _, err := sp.Print(fmt.Sprintf("w%d-i%d", w, i), rng.Intn(3)+1); err != nil {
						t.Errorf("spooler.Print: %v", err)
						return
					}
				case 6:
					if _, err := clock.Wakeme(rng.Intn(3)); err != nil {
						t.Errorf("clock.Wakeme: %v", err)
						return
					}
				case 7:
					if _, err := rem.Call("Dictionary", "Search", ws.Next()); err != nil {
						t.Errorf("remote Search: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Safety invariants across the whole run.
	if _, violations := db.Stats(); violations != 0 {
		t.Errorf("rwdb: %d exclusion violations", violations)
	}
	if _, _, violations := pbuf.Stats(); violations != 0 {
		t.Errorf("parbuffer: %d slot violations", violations)
	}
	if _, _, violations := sp.Stats(); violations != 0 {
		t.Errorf("spooler: %d printer violations", violations)
	}
	requests, executions, combined := d.Stats()
	if executions+combined != requests {
		t.Errorf("dict accounting: %d + %d != %d", executions, combined, requests)
	}

	// Orderly shutdown of everything.
	close(stopTicks)
	rem.Close()
	node.Close()
	for _, c := range []interface{ Close() error }{buf, pbuf, db, d, sp, clock} {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}

	// Goroutine-leak check with deadline-aware settling.
	settleGoroutines(t, before)
}
