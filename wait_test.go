package alps_test

import (
	"testing"
	"time"

	"repro/internal/testutil"
)

// The soak and chaos suites' wait helpers live in internal/testutil so the
// fabric e2e harness (and any future package) can share them; these thin
// wrappers keep the existing call sites unchanged.

func waitBudget(t *testing.T) time.Time {
	t.Helper()
	return testutil.WaitBudget(t)
}

func waitUntil(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	testutil.WaitUntil(t, desc, cond)
}

func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	testutil.SettleGoroutines(t, before)
}
