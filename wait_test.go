package alps_test

import (
	"runtime"
	"testing"
	"time"
)

// waitBudget returns how long a polling wait may run: until just before the
// test binary's own deadline (-timeout), or 30s when none is set. Deriving
// waits from the deadline instead of fixed wall-clock sleeps keeps the soak
// and chaos tests honest on slow (race-instrumented, loaded-CI) machines.
func waitBudget(t *testing.T) time.Time {
	t.Helper()
	if deadline, ok := t.Deadline(); ok {
		// Leave a grace period so a failed wait reports through t.Fatalf
		// with diagnostics rather than the panic of a timed-out binary.
		return deadline.Add(-2 * time.Second)
	}
	return time.Now().Add(30 * time.Second)
}

// waitUntil polls cond every millisecond until it holds, failing the test
// with desc if the budget runs out. Use it in place of "sleep long enough"
// waits: it returns as soon as the event happens and only ever fails when
// the event genuinely never happened.
func waitUntil(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := waitBudget(t)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

// settleGoroutines waits for the goroutine count to return to (close to)
// its pre-test level after shutdown, GC-ing between polls; on timeout it
// fails with a full stack dump. Runtime-internal goroutines may linger, so
// a small tolerance is allowed.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := waitBudget(t)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<16)
			n := runtime.Stack(stack, true)
			t.Fatalf("goroutines: before %d, after %d — leak?\n%s", before, after, stack[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
