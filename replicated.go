package alps

import (
	"repro/internal/replica"
	"repro/internal/rpc"
)

// Replication types (docs/REPLICATION.md), re-exported. A replication
// group makes one ALPS object survive the death of its host: a
// Raft-style replicated log carries the object's call ledger across 3+
// nodes, the client-session table rides the log so retried calls land
// exactly once across a failover, and a restarted member catches up from
// a leader snapshot.
type (
	// Replica is one member of a replication group.
	Replica = replica.Replica
	// ReplicaConfig configures one member: identity, the static peer set,
	// durability, election timing, and the snapshot/restore hooks.
	ReplicaConfig = replica.Config
	// ReplicaRole is a member's consensus role.
	ReplicaRole = replica.Role
)

// Replica role values, re-exported.
const (
	ReplicaFollower  = replica.Follower
	ReplicaCandidate = replica.Candidate
	ReplicaLeader    = replica.Leader
)

// ErrNotLeader reports a call that reached a group member that is not
// the leader. Retryable: clients built with rpc.DialMulti bounce to the
// next address automatically, keeping the same at-most-once identity.
var ErrNotLeader = rpc.ErrNotLeader

// ReplicatedObject wraps obj — typically an *Object, but any call
// surface works — as one member of a consensus group and publishes it on
// node: the replicated object under cfg.Group and the consensus endpoint
// under its control name. Committed calls apply to obj sequentially in
// log order on every member, so per-key FIFO holds across failover.
//
// The member starts immediately (elections, replication); Close it
// before closing the node.
func ReplicatedObject(node *rpc.Node, cfg ReplicaConfig, obj rpc.Callable) (*Replica, error) {
	rep, err := replica.New(cfg, obj)
	if err != nil {
		return nil, err
	}
	if err := rep.Publish(node); err != nil {
		rep.Close()
		return nil, err
	}
	return rep, nil
}
