package alps_test

import (
	"fmt"
	"log"
	"sort"
	"sync"

	alps "repro"
)

// Example builds the paper's bounded buffer (§2.4.1): the manager accepts
// Deposit only while the buffer has room and Remove only while it holds
// messages; the bodies contain no synchronization at all.
func Example() {
	const n = 2
	var (
		buf     [n]alps.Value
		in, out int
	)
	obj, err := alps.New("Buffer",
		alps.WithEntry(alps.EntrySpec{Name: "Deposit", Params: 1,
			Body: func(inv *alps.Invocation) error {
				buf[in] = inv.Param(0)
				in = (in + 1) % n
				return nil
			}}),
		alps.WithEntry(alps.EntrySpec{Name: "Remove", Results: 1,
			Body: func(inv *alps.Invocation) error {
				m := buf[out]
				out = (out + 1) % n
				inv.Return(m)
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			count := 0
			_ = m.Loop(
				alps.OnAccept("Deposit", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err == nil {
						count++
					}
				}).When(func(*alps.Accepted) bool { return count < n }),
				alps.OnAccept("Remove", func(a *alps.Accepted) {
					if _, err := m.Execute(a); err == nil {
						count--
					}
				}).When(func(*alps.Accepted) bool { return count > 0 }),
			)
		}, alps.Intercept("Deposit"), alps.Intercept("Remove")),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	for _, msg := range []string{"first", "second"} {
		if _, err := obj.Call("Deposit", msg); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		res, err := obj.Call("Remove")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res[0])
	}
	// Output:
	// first
	// second
}

// ExampleMgr_FinishAccepted shows request combining (§2.7): the manager
// answers a call outright, and the procedure body never runs.
func ExampleMgr_FinishAccepted() {
	obj, err := alps.New("Cache",
		alps.WithEntry(alps.EntrySpec{Name: "Get", Params: 1, Results: 1,
			Body: func(inv *alps.Invocation) error {
				inv.Return("computed") // never reached in this example
				return nil
			}}),
		alps.WithManager(func(m *alps.Mgr) {
			for {
				a, err := m.Accept("Get")
				if err != nil {
					return
				}
				// The manager intercepted all params and supplies all
				// results: finish without start.
				if err := m.FinishAccepted(a, "cached:"+a.Params[0].(string)); err != nil {
					return
				}
			}
		}, alps.InterceptPR("Get", 1, 1)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	got, err := alps.Call1[string](obj, "Get", "key")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(got)
	// Output: cached:key
}

// ExamplePar runs procedures in parallel and joins them (§2.1.1).
func ExamplePar() {
	var mu sync.Mutex
	var got []int
	alps.ParFor(1, 3, func(i int) {
		mu.Lock()
		got = append(got, i*i)
		mu.Unlock()
	})
	sort.Ints(got)
	fmt.Println(got)
	// Output: [1 4 9]
}

// ExampleChan demonstrates asynchronous point-to-point channels (§2.1.2):
// sends never block; receives see FIFO order.
func ExampleChan() {
	c := alps.NewChan("results", alps.WithArity(2))
	_ = c.Send("x", 1)
	_ = c.Send("y", 2)
	for i := 0; i < 2; i++ {
		msg, _ := c.Recv()
		fmt.Println(msg[0], msg[1])
	}
	// Output:
	// x 1
	// y 2
}
